file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_parameters.dir/bench_fig4_parameters.cpp.o"
  "CMakeFiles/bench_fig4_parameters.dir/bench_fig4_parameters.cpp.o.d"
  "bench_fig4_parameters"
  "bench_fig4_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
