# Empty dependencies file for bench_fig6_latency_500users.
# This may be replaced when dependencies are built.
