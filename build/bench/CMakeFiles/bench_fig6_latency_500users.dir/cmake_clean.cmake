file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_latency_500users.dir/bench_fig6_latency_500users.cpp.o"
  "CMakeFiles/bench_fig6_latency_500users.dir/bench_fig6_latency_500users.cpp.o.d"
  "bench_fig6_latency_500users"
  "bench_fig6_latency_500users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_latency_500users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
