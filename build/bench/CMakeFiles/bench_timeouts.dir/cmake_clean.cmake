file(REMOVE_RECURSE
  "CMakeFiles/bench_timeouts.dir/bench_timeouts.cpp.o"
  "CMakeFiles/bench_timeouts.dir/bench_timeouts.cpp.o.d"
  "bench_timeouts"
  "bench_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
