file(REMOVE_RECURSE
  "CMakeFiles/tcp_localnet.dir/tcp_localnet.cpp.o"
  "CMakeFiles/tcp_localnet.dir/tcp_localnet.cpp.o.d"
  "tcp_localnet"
  "tcp_localnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_localnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
