# Empty dependencies file for tcp_localnet.
# This may be replaced when dependencies are built.
