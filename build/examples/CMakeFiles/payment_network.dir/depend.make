# Empty dependencies file for payment_network.
# This may be replaced when dependencies are built.
