file(REMOVE_RECURSE
  "CMakeFiles/catchup_node.dir/catchup_node.cpp.o"
  "CMakeFiles/catchup_node.dir/catchup_node.cpp.o.d"
  "catchup_node"
  "catchup_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catchup_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
