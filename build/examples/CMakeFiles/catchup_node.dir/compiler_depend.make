# Empty compiler generated dependencies file for catchup_node.
# This may be replaced when dependencies are built.
