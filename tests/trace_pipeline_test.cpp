// End-to-end tests for the cross-node tracing and auditing pipeline: JSONL
// schema round-trip, trace-context propagation through gossip, waterfall
// joins over a multi-node simulation, the online SafetyAuditor against both
// honest and adversarial runs, and the periodic stats reporter's JSON-lines
// output.
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/sim_harness.h"
#include "src/netsim/simulation.h"
#include "src/obs/round_tracer.h"
#include "src/obs/safety_auditor.h"
#include "src/obs/stats_reporter.h"
#include "src/obs/trace_collector.h"

namespace algorand {
namespace {

// ---------------------------------------------------------------------------
// JSONL schema round-trip
// ---------------------------------------------------------------------------

std::vector<TraceEvent> SampleEvents() {
  std::vector<TraceEvent> events;
  auto add = [&events](TraceKind kind, auto mutate) {
    TraceEvent ev;
    ev.at = Millis(1500) + static_cast<SimTime>(events.size()) * Nanos(12345677);
    ev.node = static_cast<uint32_t>(events.size() % 7);
    ev.round = 3 + events.size() % 4;
    ev.kind = kind;
    mutate(&ev);
    events.push_back(ev);
  };
  add(TraceKind::kRoundStart, [](TraceEvent* ev) { ev->a = 2; });
  add(TraceKind::kSortition, [](TraceEvent* ev) {
    ev->a = 3;
    ev->b = kTraceRoleProposer;
  });
  add(TraceKind::kSortition, [](TraceEvent* ev) {
    ev->step = 4;
    ev->b = kTraceRoleCommittee;
  });
  add(TraceKind::kStepEnter, [](TraceEvent* ev) { ev->step = 1; });
  add(TraceKind::kStepExit, [](TraceEvent* ev) {
    ev->step = 1;
    ev->a = 87;
    ev->value_prefix = 0xdeadbeef12345678ull;
  });
  add(TraceKind::kStepExit, [](TraceEvent* ev) {
    ev->step = 0xffffffff;
    ev->flag = 1;  // Timed out.
  });
  add(TraceKind::kReductionDone,
      [](TraceEvent* ev) { ev->value_prefix = 0x0102030405060708ull; });
  add(TraceKind::kCoinFlip, [](TraceEvent* ev) {
    ev->step = 7;
    ev->a = 1;
  });
  add(TraceKind::kBinaryDecided, [](TraceEvent* ev) {
    ev->a = 2;
    ev->value_prefix = 0xffffffffffffffffull;
  });
  add(TraceKind::kRoundEnd, [](TraceEvent* ev) {
    ev->flag = kTraceFinal;
    ev->value_prefix = 0xabcdef;
  });
  add(TraceKind::kRoundEnd, [](TraceEvent* ev) { ev->flag = kTraceEmpty | kTraceHung; });
  add(TraceKind::kRecoveryEnter, [](TraceEvent* ev) {
    ev->round = kTraceRecoverySessionBit | 42;
    ev->a = 1;
  });
  add(TraceKind::kCatchupStart, [](TraceEvent* ev) { ev->a = 9; });
  add(TraceKind::kCatchupBatch, [](TraceEvent* ev) {
    ev->a = 4;
    ev->b = 11;
  });
  add(TraceKind::kCatchupDone, [](TraceEvent* ev) { ev->a = 6; });
  add(TraceKind::kCrash, [](TraceEvent* ev) { ev->round = 5; });
  add(TraceKind::kRestart, [](TraceEvent* ev) { ev->flag = 1; });
  add(TraceKind::kProposalGossiped, [](TraceEvent* ev) {
    ev->a = 2;
    ev->value_prefix = 0x1122334455667788ull;
  });
  add(TraceKind::kBlockReceived, [](TraceEvent* ev) {
    ev->a = 3;  // Origin node.
    ev->b = 1499000000ull;
    ev->value_prefix = 0x1122334455667788ull;
  });
  add(TraceKind::kBlockReceived, [](TraceEvent* ev) {
    ev->a = kTraceNoOrigin;  // Unstamped message.
    ev->value_prefix = 0x1122334455667788ull;
  });
  return events;
}

TEST(TraceJsonlTest, DumpParseRoundTripIsIdentity) {
  RoundTracer tracer(64);
  std::vector<TraceEvent> events = SampleEvents();
  for (const TraceEvent& ev : events) {
    tracer.Record(ev);
  }
  std::string jsonl = tracer.ToJsonl();
  auto parsed = ParseTraceJsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE((*parsed)[i] == events[i]) << "event " << i << ": " << TraceEventToJson(events[i])
                                           << " vs " << TraceEventToJson((*parsed)[i]);
  }
}

TEST(TraceJsonlTest, SingleEventJsonMatchesJsonlLine) {
  TraceEvent ev = SampleEvents()[4];  // step_exit with votes + value.
  RoundTracer tracer(4);
  tracer.Record(ev);
  std::string jsonl = tracer.ToJsonl();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_EQ(TraceEventToJson(ev) + "\n", jsonl);
}

TEST(TraceJsonlTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTraceEventJson("").has_value());
  EXPECT_FALSE(ParseTraceEventJson("not json").has_value());
  EXPECT_FALSE(ParseTraceEventJson("{\"t\":1.0}").has_value());  // No "ev".
  EXPECT_FALSE(ParseTraceEventJson("{\"t\":1.0,\"ev\":\"no_such_kind\"}").has_value());
  EXPECT_FALSE(
      ParseTraceEventJson("{\"t\":1.0,\"ev\":\"round_start\"} trailing").has_value());
  EXPECT_FALSE(ParseTraceJsonl("{\"t\":1.0,\"ev\":\"round_start\"}\ngarbage\n").has_value());
}

TEST(FlatJsonTest, ParsesAndRejects) {
  auto obj = ParseFlatJsonObject("{\"a\":1,\"b\":\"x y\",\"c\":true,\"d\":-2.5}");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("a"), "1");
  EXPECT_EQ(obj->at("b"), "x y");
  EXPECT_EQ(obj->at("c"), "true");
  EXPECT_EQ(obj->at("d"), "-2.5");
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1").has_value());       // Unterminated.
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1,\"a\":2}").has_value());  // Duplicate key.
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1}x").has_value());     // Trailing garbage.
  EXPECT_FALSE(ParseFlatJsonObject("[1,2]").has_value());          // Not an object.
}

// ---------------------------------------------------------------------------
// Trace-context propagation + collector join over a real multi-node sim
// ---------------------------------------------------------------------------

TEST(TraceCollectorTest, JoinsWaterfallsFromMultiNodeSim) {
  constexpr uint64_t kRounds = 2;
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.use_sim_crypto = true;
  cfg.params = ProtocolParams::ScaledCommittees(0.5);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(kRounds));

  std::vector<TraceEvent> events = h.tracer().Events();
  // Gossip stamped the proposal; every node's first valid receipt joined
  // against the origin's stamp.
  size_t receipts_with_origin = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceKind::kBlockReceived && ev.a != kTraceNoOrigin) {
      ++receipts_with_origin;
    }
  }
  EXPECT_GT(receipts_with_origin, 0u);

  TraceCollector collector;
  collector.AddEvents(events);
  std::vector<RoundWaterfall> waterfalls = collector.Waterfalls();
  ASSERT_GE(waterfalls.size(), kRounds);
  for (uint64_t r = 0; r < kRounds; ++r) {
    const RoundWaterfall& wf = waterfalls[r];
    EXPECT_EQ(wf.round, r + 1);
    EXPECT_EQ(wf.nodes, cfg.n_nodes) << "round " << wf.round;
    EXPECT_GT(wf.receipts, 0u);
    // Receipt latency percentiles are ordered; the p50 can legitimately be
    // zero (a proposer's first receipt is its own zero-latency self-delivery)
    // but the tail reflects real network hops.
    EXPECT_GT(wf.receipt_p90_ms, 0.0);
    EXPECT_LE(wf.receipt_p50_ms, wf.receipt_p90_ms);
    EXPECT_LE(wf.receipt_p90_ms, wf.receipt_p99_ms);
    // The three Fig-5 phases are all nonzero and partition the round wall.
    EXPECT_GT(wf.gossip_ms, 0.0);
    EXPECT_GT(wf.reduction_ms, 0.0);
    EXPECT_GT(wf.votes_ms, 0.0);
    EXPECT_NEAR(wf.gossip_ms + wf.reduction_ms + wf.votes_ms, wf.round_ms,
                wf.round_ms * 1e-9 + 1e-6);
    EXPECT_FALSE(wf.step_p50_ms.empty());
  }
  // ToJson emits one object per round and stays structurally sound.
  std::string json = TraceCollector::ToJson(waterfalls);
  EXPECT_NE(json.find("\"rounds\":["), std::string::npos);
  EXPECT_NE(json.find("\"gossip_ms\":"), std::string::npos);
}

TEST(TraceCollectorTest, IgnoresRecoverySessionsAndTipReusingKinds) {
  TraceCollector collector;
  TraceEvent ev;
  ev.kind = TraceKind::kRoundStart;
  ev.round = kTraceRecoverySessionBit | 7;
  collector.Ingest(ev);
  // kCrash/kCatchupDone reuse `round` for chain tips; they must not fabricate
  // round entries.
  ev.round = 12345;
  ev.kind = TraceKind::kCrash;
  collector.Ingest(ev);
  ev.kind = TraceKind::kCatchupDone;
  collector.Ingest(ev);
  EXPECT_TRUE(collector.Waterfalls().empty());
}

// ---------------------------------------------------------------------------
// SafetyAuditor: synthetic violation streams
// ---------------------------------------------------------------------------

// Small explicit quorum thresholds (the ScaledCommittees(0.5) values: a step
// winner needs > 68.5 weighted votes, FINAL needs > 222).
SafetyAuditorConfig TestThresholds() {
  SafetyAuditorConfig cfg;
  cfg.step_threshold = 68.5;
  cfg.final_threshold = 222;
  return cfg;
}

TraceEvent RoundEndEvent(uint32_t node, uint64_t round, uint64_t value, uint8_t flag) {
  TraceEvent ev;
  ev.node = node;
  ev.round = round;
  ev.kind = TraceKind::kRoundEnd;
  ev.value_prefix = value;
  ev.flag = flag;
  return ev;
}

TEST(SafetyAuditorTest, FlagsConflictingFinalBlocks) {
  SafetyAuditor auditor;
  auditor.Observe(RoundEndEvent(0, 5, 0xaaaa, kTraceFinal));
  auditor.Observe(RoundEndEvent(1, 5, 0xaaaa, kTraceFinal));  // Agreeing: fine.
  EXPECT_TRUE(auditor.ok());
  auditor.Observe(RoundEndEvent(2, 5, 0xbbbb, kTraceFinal));  // Conflict.
  EXPECT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violation_count(), 1u);
  EXPECT_NE(auditor.Report().find("two FINAL blocks"), std::string::npos);
}

TEST(SafetyAuditorTest, TentativeDisagreementIsNotAViolation) {
  SafetyAuditor auditor;
  auditor.Observe(RoundEndEvent(0, 5, 0xaaaa, 0));
  auditor.Observe(RoundEndEvent(1, 5, 0xbbbb, 0));
  EXPECT_TRUE(auditor.ok());
}

TEST(SafetyAuditorTest, FlagsSubThresholdQuorum) {
  SafetyAuditor auditor(TestThresholds());
  TraceEvent ev;
  ev.node = 0;
  ev.round = 3;
  ev.kind = TraceKind::kStepExit;
  ev.step = 2;
  ev.a = 10;  // Far below 0.685 * 100.
  auditor.Observe(ev);
  EXPECT_FALSE(auditor.ok());
  // A timed-out exit with few votes is normal.
  SafetyAuditor auditor2(TestThresholds());
  ev.flag = 1;
  auditor2.Observe(ev);
  EXPECT_TRUE(auditor2.ok());
  // A healthy quorum passes.
  SafetyAuditor auditor3(TestThresholds());
  ev.flag = 0;
  ev.a = 80;
  auditor3.Observe(ev);
  EXPECT_TRUE(auditor3.ok());
}

TEST(SafetyAuditorTest, FinalWithoutFinalStepQuorumIsFlagged) {
  SafetyAuditorConfig cfg = TestThresholds();
  SafetyAuditor auditor(cfg);
  TraceEvent start;
  start.node = 0;
  start.round = 4;
  start.kind = TraceKind::kRoundStart;
  auditor.Observe(start);
  auditor.Observe(RoundEndEvent(0, 4, 0xcccc, kTraceFinal));
  EXPECT_FALSE(auditor.ok());

  // Same stream with a non-timed-out final-step exit in between is clean.
  SafetyAuditor auditor2(cfg);
  auditor2.Observe(start);
  TraceEvent quorum;
  quorum.node = 0;
  quorum.round = 4;
  quorum.kind = TraceKind::kStepExit;
  quorum.step = cfg.final_step_code;
  quorum.a = 250;  // Above 0.74 * 300.
  auditor2.Observe(quorum);
  auditor2.Observe(RoundEndEvent(0, 4, 0xcccc, kTraceFinal));
  EXPECT_TRUE(auditor2.ok());
}

TEST(SafetyAuditorTest, FinalValueMustMatchFinalStepQuorumValue) {
  // A node whose final step exits with a quorum on value X but whose round
  // ends FINAL on value Y fabricated its finality.
  SafetyAuditorConfig cfg = TestThresholds();
  SafetyAuditor auditor(cfg);
  TraceEvent quorum;
  quorum.node = 0;
  quorum.round = 4;
  quorum.kind = TraceKind::kStepExit;
  quorum.step = cfg.final_step_code;
  quorum.a = 250;
  quorum.value_prefix = 0xaaaa;
  auditor.Observe(quorum);
  auditor.Observe(RoundEndEvent(0, 4, 0xbbbb, kTraceFinal));
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.Report().find("differs from final-step quorum value"),
            std::string::npos);

  // Matching values are clean.
  SafetyAuditor auditor2(cfg);
  auditor2.Observe(quorum);
  auditor2.Observe(RoundEndEvent(0, 4, 0xaaaa, kTraceFinal));
  EXPECT_TRUE(auditor2.ok());
}

TEST(SafetyAuditorTest, CrossNodeFinalStepWinnersMustAgree) {
  // Two nodes reporting final-step quorums on different values for the same
  // round would certify two blocks — the checker's inv-5.
  SafetyAuditorConfig cfg = TestThresholds();
  SafetyAuditor auditor(cfg);
  TraceEvent quorum;
  quorum.node = 0;
  quorum.round = 4;
  quorum.kind = TraceKind::kStepExit;
  quorum.step = cfg.final_step_code;
  quorum.a = 250;
  quorum.value_prefix = 0xaaaa;
  auditor.Observe(quorum);
  quorum.node = 1;  // Same value on another node: fine.
  auditor.Observe(quorum);
  EXPECT_TRUE(auditor.ok());
  quorum.node = 2;
  quorum.value_prefix = 0xbbbb;  // Conflicting quorum.
  auditor.Observe(quorum);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.Report().find("final-step quorums on two values"), std::string::npos);
}

TEST(SafetyAuditorTest, RestartedNodesFinalStepWinnersAreForgiven) {
  // A node that crashed and rejoined may replay a stale round's final step;
  // its quorum report must not count as a cross-node conflict.
  SafetyAuditorConfig cfg = TestThresholds();
  SafetyAuditor auditor(cfg);
  TraceEvent quorum;
  quorum.node = 0;
  quorum.round = 4;
  quorum.kind = TraceKind::kStepExit;
  quorum.step = cfg.final_step_code;
  quorum.a = 250;
  quorum.value_prefix = 0xaaaa;
  auditor.Observe(quorum);
  TraceEvent crash;
  crash.node = 2;
  crash.kind = TraceKind::kCrash;
  auditor.Observe(crash);
  quorum.node = 2;
  quorum.value_prefix = 0xbbbb;
  auditor.Observe(quorum);
  EXPECT_TRUE(auditor.ok());
}

TEST(SafetyAuditorTest, FinalityIsMonotonePerNode) {
  SafetyAuditor auditor;
  auditor.Observe(RoundEndEvent(0, 6, 0xaaaa, kTraceFinal));
  auditor.Observe(RoundEndEvent(0, 6, 0xaaaa, 0));  // Demoted to tentative.
  EXPECT_FALSE(auditor.ok());

  SafetyAuditor auditor2;
  auditor2.Observe(RoundEndEvent(0, 6, 0xaaaa, 0));  // Tentative -> final: fine.
  auditor2.Observe(RoundEndEvent(0, 6, 0xaaaa, kTraceFinal));
  EXPECT_TRUE(auditor2.ok());
}

TEST(SafetyAuditorTest, CatchupTipMustNotRegress) {
  SafetyAuditor auditor;
  TraceEvent start;
  start.node = 2;
  start.round = 9;  // Tip at session start.
  start.kind = TraceKind::kCatchupStart;
  start.a = 15;
  auditor.Observe(start);
  TraceEvent done;
  done.node = 2;
  done.round = 7;  // Behind the start tip.
  done.kind = TraceKind::kCatchupDone;
  auditor.Observe(done);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.Report().find("catch-up regressed"), std::string::npos);

  SafetyAuditor auditor2;
  auditor2.Observe(start);
  done.round = 15;
  auditor2.Observe(done);
  EXPECT_TRUE(auditor2.ok());
}

TEST(SafetyAuditorTest, FlagsEquivocationOncePerProposerRound) {
  SafetyAuditor auditor;
  TraceEvent p;
  p.node = 3;
  p.round = 2;
  p.kind = TraceKind::kProposalGossiped;
  p.value_prefix = 0x1111;
  auditor.Observe(p);
  // Another node reports receiving a different block from proposer 3.
  TraceEvent r;
  r.node = 8;
  r.round = 2;
  r.kind = TraceKind::kBlockReceived;
  r.a = 3;
  r.value_prefix = 0x2222;
  auditor.Observe(r);
  auditor.Observe(r);  // Same conflict again: still one flag.
  EXPECT_EQ(auditor.equivocations(), 1u);
  EXPECT_TRUE(auditor.ok());  // An attack indicator, not a safety violation.
}

TEST(SafetyAuditorTest, RestartedProposersAreForgiven) {
  SafetyAuditor auditor;
  TraceEvent p;
  p.node = 3;
  p.round = 2;
  p.kind = TraceKind::kProposalGossiped;
  p.value_prefix = 0x1111;
  auditor.Observe(p);
  TraceEvent crash;
  crash.node = 3;
  crash.kind = TraceKind::kCrash;
  crash.round = 2;
  auditor.Observe(crash);
  p.value_prefix = 0x2222;  // Rebuilt after restart: legitimately different.
  auditor.Observe(p);
  EXPECT_EQ(auditor.equivocations(), 0u);
}

TEST(SafetyAuditorTest, RestartedReceiversCannotWitnessEquivocation) {
  // A rejoined node replaying stale rounds receives blocks re-gossiped from
  // stored copies, whose trace stamp names the relayer, not the proposer —
  // such receipts must not be read as proposer equivocation.
  SafetyAuditor auditor;
  TraceEvent p;
  p.node = 9;
  p.round = 13;
  p.kind = TraceKind::kProposalGossiped;
  p.value_prefix = 0x1111;
  auditor.Observe(p);
  TraceEvent crash;
  crash.node = 11;
  crash.kind = TraceKind::kCrash;
  auditor.Observe(crash);
  TraceEvent r;  // Node 11 rejoins and sees a conflicting hash for round 13.
  r.node = 11;
  r.round = 13;
  r.kind = TraceKind::kBlockReceived;
  r.a = 9;
  r.value_prefix = 0x2222;
  auditor.Observe(r);
  EXPECT_EQ(auditor.equivocations(), 0u);
}

TEST(SafetyAuditorTest, CapsStoredViolationsButCountsAll) {
  SafetyAuditorConfig cfg;
  cfg.max_violations = 2;
  SafetyAuditor auditor(cfg);
  for (uint64_t r = 0; r < 5; ++r) {
    auditor.Observe(RoundEndEvent(0, r, 0xaaaa, kTraceFinal));
    auditor.Observe(RoundEndEvent(1, r, 0xbbbb, kTraceFinal));
  }
  EXPECT_EQ(auditor.violation_count(), 5u);
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_NE(auditor.Report().find("(+3 more)"), std::string::npos);
}

TEST(SafetyAuditorTest, MetricsMirrorCounts) {
  MetricsRegistry reg;
  SafetyAuditor auditor;
  auditor.AttachMetrics(&reg);
  auditor.Observe(RoundEndEvent(0, 1, 0xaaaa, kTraceFinal));
  auditor.Observe(RoundEndEvent(1, 1, 0xbbbb, kTraceFinal));
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("audit.events"), 2u);
  EXPECT_EQ(snap.CounterValue("audit.violations"), 1u);
  EXPECT_EQ(snap.CounterValue("audit.equivocations"), 0u);
}

// ---------------------------------------------------------------------------
// SafetyAuditor against real runs (live observer hook)
// ---------------------------------------------------------------------------

TEST(SafetyAuditorSimTest, FlagsSeededEquivocatingRun) {
  HarnessConfig cfg;
  cfg.n_nodes = 40;
  cfg.use_sim_crypto = true;
  cfg.params = ProtocolParams::ScaledCommittees(0.5);
  cfg.malicious_fraction = 0.1;  // EquivocatingNode for the first 4 ids.
  SimHarness h(cfg);
  SafetyAuditorConfig audit_cfg;
  audit_cfg.step_threshold = cfg.params.StepThreshold();
  audit_cfg.final_threshold = cfg.params.FinalThreshold();
  SafetyAuditor auditor(audit_cfg);
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });
  h.Start();
  ASSERT_TRUE(h.RunRounds(3));
  // The attack is detected...
  EXPECT_GT(auditor.equivocations(), 0u);
  // ...but BA* survives it: no safety violation, matching CheckSafety.
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(SafetyAuditorSimTest, SilentOnHonestChaosRun) {
  HarnessConfig cfg;
  cfg.n_nodes = 50;
  cfg.use_sim_crypto = true;
  cfg.params = ProtocolParams::ScaledCommittees(0.5);
  cfg.crash_schedule.push_back({3, Seconds(10), Seconds(30), true});
  cfg.crash_schedule.push_back({7, Seconds(15), Seconds(40), false});
  SimHarness h(cfg);
  SafetyAuditorConfig audit_cfg;
  audit_cfg.step_threshold = cfg.params.StepThreshold();
  audit_cfg.final_threshold = cfg.params.FinalThreshold();
  SafetyAuditor auditor(audit_cfg);
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });
  h.Start();
  ASSERT_TRUE(h.RunRounds(5, Hours(2)));
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  EXPECT_EQ(auditor.equivocations(), 0u);
  EXPECT_TRUE(h.CheckSafety().ok);
}

// ---------------------------------------------------------------------------
// StatsReporter
// ---------------------------------------------------------------------------

TEST(StatsReporterTest, MakeLineIsValidFlatJson) {
  std::string line =
      StatsReporter::MakeLine(12.5, 0.25, {{"tip", 41}, {"rounds_per_sec", 3.25}});
  auto obj = ParseFlatJsonObject(line);
  ASSERT_TRUE(obj.has_value()) << line;
  EXPECT_EQ(obj->at("t"), "12.500000");
  EXPECT_EQ(obj->at("lag_ms"), "0.250");
  EXPECT_EQ(obj->at("tip"), "41");
  EXPECT_EQ(obj->at("rounds_per_sec"), "3.25");
  // Hostile key characters are escaped; non-finite values are zeroed (neither
  // NaN nor inf is JSON).
  std::string hostile = StatsReporter::MakeLine(
      0, 0, {{"quote\"key", 1}, {"nan", std::nan("")}, {"inf", INFINITY}});
  EXPECT_NE(hostile.find("\"quote\\\"key\":1"), std::string::npos);
  EXPECT_NE(hostile.find("\"nan\":0"), std::string::npos);
  EXPECT_NE(hostile.find("\"inf\":0"), std::string::npos);
}

TEST(StatsReporterTest, EmitsOneValidJsonLinePerInterval) {
  Simulation sim;
  std::ostringstream out;
  int ticks = 0;
  StatsReporter reporter(
      &sim, Millis(100),
      [&ticks]() -> StatsReporter::Sample {
        ++ticks;
        return {{"tick", static_cast<double>(ticks)}};
      },
      &out);
  reporter.Start();
  // Keep the queue alive past the last expected tick, then drain.
  sim.Schedule(Millis(1050), [] {});
  sim.RunUntil(Millis(1050));
  reporter.Stop();
  EXPECT_EQ(reporter.lines_emitted(), 10u);

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  double last_t = -1;
  while (std::getline(lines, line)) {
    auto obj = ParseFlatJsonObject(line);
    ASSERT_TRUE(obj.has_value()) << line;
    EXPECT_EQ(obj->count("t"), 1u);
    EXPECT_EQ(obj->count("lag_ms"), 1u);
    double t = std::stod(obj->at("t"));
    EXPECT_GT(t, last_t);
    last_t = t;
    EXPECT_EQ(obj->at("tick"), std::to_string(++count));
  }
  EXPECT_EQ(count, 10);
}

TEST(StatsReporterTest, StopPreventsFurtherLines) {
  Simulation sim;
  std::ostringstream out;
  StatsReporter reporter(
      &sim, Millis(100), []() -> StatsReporter::Sample { return {}; }, &out);
  reporter.Start();
  sim.Schedule(Millis(250), [&reporter] { reporter.Stop(); });
  sim.Schedule(Millis(1000), [] {});
  sim.RunUntil(Millis(1000));
  EXPECT_EQ(reporter.lines_emitted(), 2u);
}

}  // namespace
}  // namespace algorand
