// Cryptographic sortition tests (§5): selection statistics, proportionality,
// Sybil-splitting invariance, prove/verify agreement, and priorities.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/core/sortition.h"
#include "src/crypto/vrf.h"

namespace algorand {
namespace {

Ed25519KeyPair KeyFromRng(DeterministicRng* rng) {
  FixedBytes<32> seed;
  rng->FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

VrfOutput OutputFromRng(DeterministicRng* rng) {
  VrfOutput out;
  rng->FillBytes(out.data(), out.size());
  return out;
}

SeedBytes SeedFromRng(DeterministicRng* rng) {
  SeedBytes s;
  rng->FillBytes(s.data(), s.size());
  return s;
}

TEST(HashToFractionTest, RangeAndMonotonicity) {
  VrfOutput zero;
  EXPECT_EQ(HashToFraction(zero), 0.0L);

  VrfOutput max;
  for (size_t i = 0; i < max.size(); ++i) {
    max[i] = 0xff;
  }
  EXPECT_LT(HashToFraction(max), 1.0L);
  EXPECT_GT(HashToFraction(max), 0.9999L);

  VrfOutput half;
  half[0] = 0x80;
  EXPECT_EQ(HashToFraction(half), 0.5L);
}

TEST(SelectSubUsersTest, ZeroWeightNeverSelected) {
  DeterministicRng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SelectSubUsers(OutputFromRng(&rng), 0, 0.5), 0u);
  }
}

TEST(SelectSubUsersTest, ZeroProbabilityNeverSelected) {
  DeterministicRng rng(2);
  EXPECT_EQ(SelectSubUsers(OutputFromRng(&rng), 1000, 0.0), 0u);
}

TEST(SelectSubUsersTest, ProbabilityOneSelectsAll) {
  DeterministicRng rng(3);
  EXPECT_EQ(SelectSubUsers(OutputFromRng(&rng), 17, 1.0), 17u);
}

TEST(SelectSubUsersTest, NeverExceedsWeight) {
  DeterministicRng rng(4);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(SelectSubUsers(OutputFromRng(&rng), 5, 0.9), 5u);
  }
}

TEST(SelectSubUsersTest, ExpectationMatchesBinomialMean) {
  // E[j] should be w*p. 20k uniform draws give a tight estimate.
  DeterministicRng rng(5);
  const uint64_t w = 100;
  const double p = 0.02;  // mean 2.
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(SelectSubUsers(OutputFromRng(&rng), w, p));
  }
  double mean = sum / n;
  // sigma of the estimate: sqrt(w p (1-p) / n) ~ 0.01.
  EXPECT_NEAR(mean, w * p, 0.06);
}

TEST(SelectSubUsersTest, VarianceMatchesBinomial) {
  DeterministicRng rng(6);
  const uint64_t w = 50;
  const double p = 0.1;
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double j = static_cast<double>(SelectSubUsers(OutputFromRng(&rng), w, p));
    sum += j;
    sumsq += j * j;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(var, w * p * (1 - p), 0.25);
}

TEST(SelectSubUsersTest, SybilSplittingDoesNotAmplify) {
  // B(k1;n1,p) + B(k2;n2,p) convolves to B(k1+k2;n1+n2,p): splitting weight w
  // into two pseudonyms leaves the total selected count distribution
  // unchanged. Compare empirical means of whole vs. split users.
  DeterministicRng rng(7);
  const double p = 0.01;
  const int n = 20000;
  double whole = 0, split = 0;
  for (int i = 0; i < n; ++i) {
    whole += static_cast<double>(SelectSubUsers(OutputFromRng(&rng), 200, p));
    split += static_cast<double>(SelectSubUsers(OutputFromRng(&rng), 120, p)) +
             static_cast<double>(SelectSubUsers(OutputFromRng(&rng), 80, p));
  }
  EXPECT_NEAR(whole / n, split / n, 0.1);
}

TEST(SelectSubUsersTest, TinyProbabilityLargeWeightIsStable) {
  // Exercises the log-space recurrence: w*p = 2 with w = 2e6.
  DeterministicRng rng(8);
  const uint64_t w = 2000000;
  const double p = 1e-6;
  double sum = 0;
  const int n = 3000;
  uint64_t max_j = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t j = SelectSubUsers(OutputFromRng(&rng), w, p);
    sum += static_cast<double>(j);
    max_j = std::max(max_j, j);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.15);
  EXPECT_LT(max_j, 20u);  // Poisson(2) tail.
}

TEST(SelectSubUsersTest, DeterministicGivenHash) {
  DeterministicRng rng(9);
  VrfOutput h = OutputFromRng(&rng);
  EXPECT_EQ(SelectSubUsers(h, 100, 0.05), SelectSubUsers(h, 100, 0.05));
}

TEST(SelectSubUsersTest, MonotoneInHashFraction) {
  // A larger hash fraction can only select >= sub-users (the CDF walk).
  VrfOutput lo, hi;
  lo[0] = 0x10;
  hi[0] = 0xf0;
  EXPECT_LE(SelectSubUsers(lo, 100, 0.3), SelectSubUsers(hi, 100, 0.3));
}

class SortitionBackendTest : public ::testing::TestWithParam<const VrfBackend*> {};

const EcVrf kEc;
const SimVrf kSim;

TEST_P(SortitionBackendTest, VerifyMatchesProve) {
  const VrfBackend& vrf = *GetParam();
  DeterministicRng rng(10);
  SeedBytes seed = SeedFromRng(&rng);
  for (int i = 0; i < 5; ++i) {
    Ed25519KeyPair kp = KeyFromRng(&rng);
    SortitionResult res =
        RunSortition(vrf, kp, seed, /*tau=*/500, Role::kCommittee, /*round=*/7, /*step=*/i,
                     /*weight=*/1000, /*total_weight=*/10000);
    uint64_t votes = VerifySortition(vrf, kp.public_key, res.hash, res.proof, seed, 500,
                                     Role::kCommittee, 7, static_cast<uint32_t>(i), 1000, 10000);
    EXPECT_EQ(votes, res.votes);
  }
}

TEST_P(SortitionBackendTest, VerifyRejectsWrongRole) {
  const VrfBackend& vrf = *GetParam();
  DeterministicRng rng(11);
  SeedBytes seed = SeedFromRng(&rng);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  SortitionResult res = RunSortition(vrf, kp, seed, 500, Role::kCommittee, 7, 1, 1000, 10000);
  EXPECT_EQ(VerifySortition(vrf, kp.public_key, res.hash, res.proof, seed, 500, Role::kProposer, 7,
                            1, 1000, 10000),
            0u);
}

TEST_P(SortitionBackendTest, VerifyRejectsWrongRoundStepSeed) {
  const VrfBackend& vrf = *GetParam();
  DeterministicRng rng(12);
  SeedBytes seed = SeedFromRng(&rng);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  SortitionResult res = RunSortition(vrf, kp, seed, 500, Role::kCommittee, 7, 1, 1000, 10000);
  ASSERT_GT(res.votes, 0u);  // weight 1000/10000, tau 500 -> expect 50; j=0 vanishingly unlikely.
  EXPECT_EQ(VerifySortition(vrf, kp.public_key, res.hash, res.proof, seed, 500, Role::kCommittee,
                            8, 1, 1000, 10000),
            0u);
  EXPECT_EQ(VerifySortition(vrf, kp.public_key, res.hash, res.proof, seed, 500, Role::kCommittee,
                            7, 2, 1000, 10000),
            0u);
  SeedBytes other_seed = SeedFromRng(&rng);
  EXPECT_EQ(VerifySortition(vrf, kp.public_key, res.hash, res.proof, other_seed, 500,
                            Role::kCommittee, 7, 1, 1000, 10000),
            0u);
}

TEST_P(SortitionBackendTest, VerifyRejectsWrongKey) {
  const VrfBackend& vrf = *GetParam();
  DeterministicRng rng(13);
  SeedBytes seed = SeedFromRng(&rng);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  Ed25519KeyPair other = KeyFromRng(&rng);
  SortitionResult res = RunSortition(vrf, kp, seed, 500, Role::kCommittee, 7, 1, 1000, 10000);
  EXPECT_EQ(VerifySortition(vrf, other.public_key, res.hash, res.proof, seed, 500,
                            Role::kCommittee, 7, 1, 1000, 10000),
            0u);
}

TEST_P(SortitionBackendTest, SelectionProportionalToWeight) {
  // A user with 3x the stake should collect ~3x the sub-user selections
  // across many (round, step) draws.
  const VrfBackend& vrf = *GetParam();
  DeterministicRng rng(14);
  SeedBytes seed = SeedFromRng(&rng);
  Ed25519KeyPair small = KeyFromRng(&rng);
  Ed25519KeyPair big = KeyFromRng(&rng);
  const uint64_t total = 40000;
  uint64_t small_votes = 0, big_votes = 0;
  const int rounds = 400;
  for (int r = 0; r < rounds; ++r) {
    small_votes += RunSortition(vrf, small, seed, 100, Role::kCommittee,
                                static_cast<uint64_t>(r), 0, 1000, total)
                       .votes;
    big_votes += RunSortition(vrf, big, seed, 100, Role::kCommittee, static_cast<uint64_t>(r), 0,
                              3000, total)
                     .votes;
  }
  // Expected: small 2.5/round -> 1000 total; big 7.5/round -> 3000 total.
  double ratio = static_cast<double>(big_votes) / static_cast<double>(small_votes);
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Backends, SortitionBackendTest, ::testing::Values(&kEc, &kSim),
                         [](const ::testing::TestParamInfo<const VrfBackend*>& info) {
                           return std::string(info.param->name());
                         });

TEST(SortitionTest, ZeroTotalWeightSelectsNobody) {
  DeterministicRng rng(15);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  SeedBytes seed = SeedFromRng(&rng);
  SimVrf vrf;
  SortitionResult res = RunSortition(vrf, kp, seed, 100, Role::kCommittee, 1, 1, 0, 0);
  EXPECT_EQ(res.votes, 0u);
}

TEST(SortitionAlphaTest, DistinctInputsDistinctAlpha) {
  SeedBytes seed;
  auto a = SortitionAlpha(seed, Role::kCommittee, 1, 2);
  auto b = SortitionAlpha(seed, Role::kCommittee, 1, 3);
  auto c = SortitionAlpha(seed, Role::kCommittee, 2, 2);
  auto d = SortitionAlpha(seed, Role::kProposer, 1, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
}

TEST(PriorityTest, PriorityIsMinOverSubUsers) {
  DeterministicRng rng(16);
  VrfOutput h = OutputFromRng(&rng);
  Hash256 p1 = ProposalPriority(h, 1);
  Hash256 p5 = ProposalPriority(h, 5);
  // More sub-users can only improve (lower) the priority value.
  EXPECT_LE(p5, p1);
}

TEST(PriorityTest, DeterministicAndDistinct) {
  DeterministicRng rng(17);
  VrfOutput h1 = OutputFromRng(&rng);
  VrfOutput h2 = OutputFromRng(&rng);
  EXPECT_EQ(ProposalPriority(h1, 3), ProposalPriority(h1, 3));
  EXPECT_NE(ProposalPriority(h1, 3), ProposalPriority(h2, 3));
}

TEST(PriorityTest, BeatsComparatorIsStrictOrder) {
  Hash256 a, b;
  a[0] = 1;
  b[0] = 2;
  EXPECT_TRUE(PriorityBeats(a, b));
  EXPECT_FALSE(PriorityBeats(b, a));
  EXPECT_FALSE(PriorityBeats(a, a));
}

// --- Cached-vs-uncached CDF equivalence ---
//
// The LRU CDF tables must be invisible: every (hash, weight, p) must select
// exactly the same sub-user count through the cache as through the raw
// recurrence, or deterministic replays diverge.

TEST(SortitionCdfCacheTest, CachedMatchesUncachedAcrossParameterSweep) {
  DeterministicRng rng(11);
  const uint64_t weights[] = {1, 2, 10, 100, 1000, 50000};
  const double ps[] = {1e-7, 1e-4, 0.01, 0.3, 0.97};
  for (uint64_t w : weights) {
    for (double p : ps) {
      for (int i = 0; i < 200; ++i) {
        VrfOutput h = OutputFromRng(&rng);
        ASSERT_EQ(SelectSubUsers(h, w, p), SelectSubUsersUncached(h, w, p))
            << "weight=" << w << " p=" << p << " trial=" << i;
      }
    }
  }
}

TEST(SortitionCdfCacheTest, CachedMatchesUncachedOnTruncatedTables) {
  // weight * p far past kSortitionCdfMaxTableEntries: the precomputed table
  // is truncated and the lookup resumes the recurrence from the stored tail.
  const uint64_t w = 100000;
  const double p = 0.5;
  DeterministicRng rng(13);
  for (int i = 0; i < 25; ++i) {
    VrfOutput h = OutputFromRng(&rng);
    uint64_t cached = SelectSubUsers(h, w, p);
    ASSERT_EQ(cached, SelectSubUsersUncached(h, w, p)) << "trial=" << i;
    // Sanity: the selections land far beyond the table (mean w*p = 50000).
    EXPECT_GT(cached, kSortitionCdfMaxTableEntries);
  }
}

TEST(SortitionCdfCacheTest, CachedMatchesUncachedAtScenarioTauThresholds) {
  // The exact (weight, p) pairs the model checker's threshold-equivocation
  // scenario runs at: 8 nodes x 1000 stake (W = 8000) under
  // ScaledCommittees(0.02), so p = tau/W for tau_proposer 5, tau_step 40,
  // tau_final 200 — the committee draws whose CDF boundaries the at-threshold
  // attack leans on. A cached/uncached disagreement here would let a replayed
  // counterexample elect a different committee than the recorded run.
  DeterministicRng rng(23);
  const uint64_t weights[] = {1000, 8000};
  const double ps[] = {5.0 / 8000.0, 40.0 / 8000.0, 200.0 / 8000.0};
  for (uint64_t w : weights) {
    for (double p : ps) {
      for (int i = 0; i < 400; ++i) {
        VrfOutput h = OutputFromRng(&rng);
        ASSERT_EQ(SelectSubUsers(h, w, p), SelectSubUsersUncached(h, w, p))
            << "weight=" << w << " p=" << p << " trial=" << i;
      }
    }
  }
}

TEST(SortitionCdfCacheTest, RepeatLookupsHitTheCache) {
  DeterministicRng rng(19);
  VrfOutput h = OutputFromRng(&rng);
  // A parameter pair no other test uses, so the first lookup is a miss.
  const uint64_t w = 777;
  const double p = 0.0123;
  SortitionCdfCacheStats before = GetSortitionCdfCacheStats();
  SelectSubUsers(h, w, p);
  SortitionCdfCacheStats mid = GetSortitionCdfCacheStats();
  EXPECT_GE(mid.misses, before.misses + 1);
  SelectSubUsers(OutputFromRng(&rng), w, p);
  SortitionCdfCacheStats after = GetSortitionCdfCacheStats();
  EXPECT_GE(after.hits, mid.hits + 1);
  EXPECT_EQ(after.misses, mid.misses);
  EXPECT_GT(after.entries, 0u);
}

}  // namespace
}  // namespace algorand
