// Real-TCP runtime tests: event loop, framing, wire codec, endpoint pairs,
// and a small live consensus network over localhost sockets.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>

#include "src/core/wire_codec.h"
#include "src/tcp/local_cluster.h"

namespace algorand {
namespace {

TEST(EventLoopTest, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(Millis(30), [&] { order.push_back(3); });
  loop.Schedule(Millis(10), [&] { order.push_back(1); });
  loop.Schedule(Millis(20), [&] { order.push_back(2); });
  loop.RunFor(Millis(80));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, NowAdvancesMonotonically) {
  EventLoop loop;
  SimTime a = loop.now();
  loop.RunFor(Millis(5));
  EXPECT_GE(loop.now(), a + Millis(4));
}

TEST(EventLoopTest, StopPredicateEndsRun) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(Millis(5), [&] { ++fired; });
  loop.Schedule(Millis(500), [&] { ++fired; });
  loop.Run([&] { return fired >= 1; });
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(Millis(5), [&] {
    ++fired;
    loop.Schedule(Millis(5), [&] { ++fired; });
  });
  loop.RunFor(Millis(50));
  EXPECT_EQ(fired, 2);
}

TEST(FramingTest, RoundTrip) {
  auto payload = BytesOfString("hello frame");
  auto framed = EncodeFrame(payload);
  FrameReader reader;
  reader.Append(framed);
  auto out = reader.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(FramingTest, ReassemblesAcrossChunks) {
  auto payload = BytesOfString("split into tiny chunks");
  auto framed = EncodeFrame(payload);
  FrameReader reader;
  for (uint8_t b : framed) {
    EXPECT_FALSE(reader.corrupted());
    reader.Append(std::span<const uint8_t>(&b, 1));
  }
  auto out = reader.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(FramingTest, MultipleFramesInOneChunk) {
  auto f1 = EncodeFrame(BytesOfString("one"));
  auto f2 = EncodeFrame(BytesOfString("two"));
  std::vector<uint8_t> both = f1;
  both.insert(both.end(), f2.begin(), f2.end());
  FrameReader reader;
  reader.Append(both);
  EXPECT_EQ(*reader.Next(), BytesOfString("one"));
  EXPECT_EQ(*reader.Next(), BytesOfString("two"));
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(FramingTest, EmptyPayloadFrame) {
  FrameReader reader;
  reader.Append(EncodeFrame({}));
  auto out = reader.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(FramingTest, OversizedFrameMarksCorrupted) {
  FrameReader reader;
  std::vector<uint8_t> evil = {0xff, 0xff, 0xff, 0xff};  // ~4 GB declared.
  reader.Append(evil);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(WireCodecTest, VoteRoundTrip) {
  DeterministicRng rng(1);
  FixedBytes<32> seed;
  rng.FillBytes(seed.data(), 32);
  Ed25519KeyPair key = Ed25519KeyFromSeed(seed);
  Ed25519Signer signer;
  VrfOutput sorthash;
  VrfProof proof;
  Hash256 prev, value;
  value[0] = 7;
  auto vote = std::make_shared<VoteMessage>(
      MakeVote(key, 3, kStepReduction1, sorthash, proof, prev, value, signer));
  auto bytes = EncodeMessage(vote);
  MessagePtr back = DecodeMessage(bytes);
  ASSERT_NE(back, nullptr);
  auto typed = std::dynamic_pointer_cast<const VoteMessage>(back);
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->DedupId(), vote->DedupId());
  EXPECT_EQ(typed->value, value);
}

TEST(WireCodecTest, BlockRoundTrip) {
  auto msg = std::make_shared<BlockMessage>();
  msg->block.round = 9;
  msg->block.padding_bytes = 1234;
  auto bytes = EncodeMessage(msg);
  MessagePtr back = DecodeMessage(bytes);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->DedupId(), msg->block.Hash());
}

TEST(WireCodecTest, BlockRequestRoundTrip) {
  auto msg = std::make_shared<BlockRequestMessage>();
  msg->round = 4;
  msg->requester = 17;
  msg->block_hash[0] = 0xcd;
  MessagePtr back = DecodeMessage(EncodeMessage(msg));
  ASSERT_NE(back, nullptr);
  auto typed = std::dynamic_pointer_cast<const BlockRequestMessage>(back);
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->requester, 17u);
  EXPECT_EQ(typed->block_hash, msg->block_hash);
}

TEST(WireCodecTest, TransactionRoundTrip) {
  DeterministicRng rng(2);
  FixedBytes<32> seed;
  rng.FillBytes(seed.data(), 32);
  Ed25519KeyPair key = Ed25519KeyFromSeed(seed);
  Ed25519Signer signer;
  auto msg = std::make_shared<TransactionMessage>();
  msg->tx = MakeTransaction(key, key.public_key, 42, 0, signer);
  MessagePtr back = DecodeMessage(EncodeMessage(msg));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->DedupId(), msg->tx.Id());
}

TEST(WireCodecTest, RecoveryProposalRoundTrip) {
  auto msg = std::make_shared<RecoveryProposalMessage>();
  msg->code = kRecoveryRoundBit | 5;
  msg->block.round = 3;
  msg->block.is_empty = true;
  Block suffix_block;
  suffix_block.round = 2;
  msg->suffix.push_back(suffix_block);
  MessagePtr back = DecodeMessage(EncodeMessage(msg));
  ASSERT_NE(back, nullptr);
  auto typed = std::dynamic_pointer_cast<const RecoveryProposalMessage>(back);
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->code, msg->code);
  ASSERT_EQ(typed->suffix.size(), 1u);
  EXPECT_EQ(typed->suffix[0].Hash(), suffix_block.Hash());
  EXPECT_EQ(typed->DedupId(), msg->DedupId());
}

TEST(WireCodecTest, RejectsGarbage) {
  EXPECT_EQ(DecodeMessage(std::vector<uint8_t>{}), nullptr);
  EXPECT_EQ(DecodeMessage(std::vector<uint8_t>{0x7f, 1, 2, 3}), nullptr);
  EXPECT_EQ(DecodeMessage(std::vector<uint8_t>{1, 2, 3}), nullptr);  // Truncated vote.
}

TEST(TcpEndpointTest, PairExchangesMessages) {
  EventLoop loop;
  TcpEndpoint a(&loop, 0, 0);
  TcpEndpoint b(&loop, 1, 0);
  ASSERT_TRUE(a.listening());
  ASSERT_TRUE(b.listening());
  std::map<NodeId, uint16_t> book = {{0, a.port()}, {1, b.port()}};
  a.SetAddressBook(book);
  b.SetAddressBook(book);

  std::vector<std::pair<NodeId, Hash256>> received_at_b;
  b.set_receiver([&](NodeId from, const MessagePtr& msg) {
    received_at_b.emplace_back(from, msg->DedupId());
  });
  std::vector<std::pair<NodeId, Hash256>> received_at_a;
  a.set_receiver([&](NodeId from, const MessagePtr& msg) {
    received_at_a.emplace_back(from, msg->DedupId());
  });

  auto req = std::make_shared<BlockRequestMessage>();
  req->round = 1;
  req->requester = 0;
  a.Send(0, 1, req);
  loop.Run([&] { return !received_at_b.empty(); });
  ASSERT_EQ(received_at_b.size(), 1u);
  EXPECT_EQ(received_at_b[0].first, 0u);
  EXPECT_EQ(received_at_b[0].second, req->DedupId());

  // Reply over the same (or reverse) connection.
  auto reply = std::make_shared<BlockRequestMessage>();
  reply->round = 2;
  reply->requester = 1;
  b.Send(1, 0, reply);
  loop.Run([&] { return !received_at_a.empty(); });
  ASSERT_EQ(received_at_a.size(), 1u);
  EXPECT_EQ(received_at_a[0].first, 1u);
}

TEST(TcpEndpointTest, LargeMessageCrossesIntact) {
  EventLoop loop;
  TcpEndpoint a(&loop, 0, 0);
  TcpEndpoint b(&loop, 1, 0);
  std::map<NodeId, uint16_t> book = {{0, a.port()}, {1, b.port()}};
  a.SetAddressBook(book);
  b.SetAddressBook(book);

  // A block with thousands of real transactions: several hundred KB that
  // must survive framing across many TCP segments.
  DeterministicRng rng(5);
  FixedBytes<32> seed;
  rng.FillBytes(seed.data(), 32);
  Ed25519KeyPair key = Ed25519KeyFromSeed(seed);
  SimSigner signer;
  auto msg = std::make_shared<BlockMessage>();
  msg->block.round = 1;
  for (int i = 0; i < 3000; ++i) {
    msg->block.txns.push_back(
        MakeTransaction(key, key.public_key, static_cast<uint64_t>(i), 0, signer));
  }
  Hash256 want = msg->block.Hash();

  Hash256 got;
  bool received = false;
  b.set_receiver([&](NodeId, const MessagePtr& m) {
    got = m->DedupId();
    received = true;
  });
  a.Send(0, 1, msg);
  loop.Run([&] { return received; });
  EXPECT_EQ(got, want);
}

TEST(TcpEndpointTest, ReconnectsAfterPeerRestart) {
  EventLoop loop;
  TcpEndpoint a(&loop, 0, 0);
  auto b = std::make_unique<TcpEndpoint>(&loop, 1, 0);
  uint16_t b_port = b->port();
  std::map<NodeId, uint16_t> book = {{0, a.port()}, {1, b_port}};
  a.SetAddressBook(book);
  b->SetAddressBook(book);
  a.EnableReconnect({1}, Millis(10), Millis(100));

  int received_at_b = 0;
  auto receiver = [&](NodeId, const MessagePtr&) { ++received_at_b; };
  b->set_receiver(receiver);

  auto req = std::make_shared<BlockRequestMessage>();
  req->round = 1;
  req->requester = 0;
  a.Send(0, 1, req);
  loop.Run([&] { return received_at_b >= 1; });
  ASSERT_EQ(received_at_b, 1);

  // Peer 1 "crashes": listener and every connection vanish, then the
  // endpoint comes back on the same port. The persistent peering on `a`
  // must observe the EOF and redial with backoff.
  b.reset();
  b = std::make_unique<TcpEndpoint>(&loop, 1, b_port);
  ASSERT_TRUE(b->listening());
  b->SetAddressBook(book);
  b->set_receiver(receiver);

  loop.Run([&] { return a.stats().reconnects >= 1 && a.connection_count() > 0; });
  EXPECT_GE(a.stats().reconnects, 1u);

  // Delivery resumes over the redialed connection.
  auto req2 = std::make_shared<BlockRequestMessage>();
  req2->round = 2;
  req2->requester = 0;
  a.Send(0, 1, req2);
  loop.Run([&] { return received_at_b >= 2; });
  EXPECT_EQ(received_at_b, 2);
}

TEST(TcpClusterTest, LiveConsensusOverLocalhost) {
  LocalClusterConfig cfg;
  cfg.n_nodes = 6;
  cfg.rng_seed = 77;
  cfg.use_sim_crypto = true;  // Keep the wall-clock budget small.
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 4096;
  // Wall-clock-friendly timeouts.
  cfg.params.lambda_priority = Millis(100);
  cfg.params.lambda_stepvar = Millis(100);
  cfg.params.lambda_step = Millis(400);
  cfg.params.lambda_block = Millis(1500);
  cfg.params.recovery_interval = Minutes(5);

  LocalCluster cluster(cfg);
  Transaction tx = MakeTransaction(cluster.genesis().keys[0],
                                   cluster.genesis().keys[1].public_key, 25, 0,
                                   cluster.signer());
  cluster.node(0).GossipTransaction(tx);
  cluster.Start();
  ASSERT_TRUE(cluster.RunRounds(2, Seconds(30)));
  EXPECT_TRUE(cluster.ChainsConsistent());
  // The gossiped payment landed in a block.
  EXPECT_TRUE(cluster.node(3).ledger().IsConfirmed(tx.Id()) ||
              cluster.node(3).ledger().accounts().BalanceOf(
                  cluster.genesis().keys[1].public_key) == 1025);
  // Real bytes moved through real sockets.
  EXPECT_GT(cluster.endpoint(0).stats().bytes_sent, 1000u);
  EXPECT_GT(cluster.endpoint(0).stats().messages_received, 10u);
}

TEST(TcpClusterTest, KilledNodeRejoinsViaCatchupOverTcp) {
  LocalClusterConfig cfg;
  cfg.n_nodes = 6;
  cfg.rng_seed = 78;
  cfg.use_sim_crypto = true;
  cfg.enable_reconnect = true;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 4096;
  cfg.params.lambda_priority = Millis(100);
  cfg.params.lambda_stepvar = Millis(100);
  cfg.params.lambda_step = Millis(400);
  cfg.params.lambda_block = Millis(1500);
  cfg.params.recovery_interval = Minutes(5);
  // Wall-clock-friendly catch-up pacing.
  cfg.params.catchup_timeout = Seconds(2);
  cfg.params.catchup_backoff_base = Millis(200);
  cfg.params.catchup_backoff_max = Seconds(2);

  LocalCluster cluster(cfg);
  cluster.Start();
  ASSERT_TRUE(cluster.RunRounds(2, Seconds(30)));
  cluster.KillNode(2);
  EXPECT_FALSE(cluster.node_alive(2));
  // Survivors keep agreeing while node 2's port is dark (peers redial it
  // with backoff the whole time).
  ASSERT_TRUE(cluster.RunRounds(6, Seconds(60)));
  cluster.RestartNode(2, /*from_snapshot=*/true);
  EXPECT_TRUE(cluster.node_alive(2));
  // RunRounds counts node 2 again, so success implies it caught up.
  ASSERT_TRUE(cluster.RunRounds(8, Seconds(90)));
  EXPECT_TRUE(cluster.ChainsConsistent());

  uint64_t max_len = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    max_len = std::max<uint64_t>(max_len, cluster.node(i).ledger().chain_length());
  }
  EXPECT_GE(cluster.node(2).ledger().chain_length() + 1, max_len);
  EXPECT_GE(cluster.node(2).catchups_completed(), 1u);

  auto m = cluster.AggregateMetrics();
  EXPECT_EQ(m.counters["restart.kills"], 1u);
  EXPECT_EQ(m.counters["restart.restarts"], 1u);
  EXPECT_GE(m.counters["catchup.completed"], 1u);
  EXPECT_GE(m.counters["catchup.blocks_applied"], 1u);
}

TEST(TcpClusterTest, KilledNodeRestartsFromDiskLog) {
  LocalClusterConfig cfg;
  cfg.n_nodes = 6;
  cfg.rng_seed = 79;
  cfg.use_sim_crypto = true;
  cfg.enable_reconnect = true;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 4096;
  cfg.params.lambda_priority = Millis(100);
  cfg.params.lambda_stepvar = Millis(100);
  cfg.params.lambda_step = Millis(400);
  cfg.params.lambda_block = Millis(1500);
  cfg.params.recovery_interval = Minutes(5);
  cfg.params.catchup_timeout = Seconds(2);
  cfg.params.catchup_backoff_base = Millis(200);
  cfg.params.catchup_backoff_max = Seconds(2);
  cfg.data_dir = ::testing::TempDir() + "algorand_tcp_disk";
  cfg.store_fsync = FsyncPolicy::kEveryRound;
  std::filesystem::remove_all(cfg.data_dir);

  LocalCluster cluster(cfg);
  cluster.Start();
  ASSERT_TRUE(cluster.RunRounds(2, Seconds(30)));
  ASSERT_NE(cluster.node_store(2), nullptr);
  // Barrier the background writer: RunRounds returns on round completion,
  // which can beat the writer thread to the log (a kill in that window
  // legitimately drops the queued tail, like a real SIGKILL).
  cluster.node_store(2)->Flush();
  EXPECT_GE(cluster.node_store(2)->max_round(), 2u);
  cluster.KillNode(2);
  EXPECT_EQ(cluster.node_store(2), nullptr);  // Parked with the dead node.
  ASSERT_TRUE(cluster.RunRounds(5, Seconds(60)));
  cluster.RestartNode(2, /*from_snapshot=*/true);
  // The restart replayed the disk log (not the in-memory snapshot): the
  // rebuilt ledger already holds the pre-crash rounds before catch-up runs.
  ASSERT_NE(cluster.node_store(2), nullptr);
  EXPECT_GE(cluster.node_store(2)->replayed_rounds(), 2u);
  EXPECT_GE(cluster.node(2).ledger().chain_length(), 3u);
  ASSERT_TRUE(cluster.RunRounds(7, Seconds(90)));
  EXPECT_TRUE(cluster.ChainsConsistent());
  // The store follows the live chain after the restart.
  cluster.node_store(2)->Flush();
  EXPECT_GE(cluster.node_store(2)->max_round(), 7u);

  auto m = cluster.AggregateMetrics();
  EXPECT_GT(m.counters["store.replay_rounds"], 0u);
  EXPECT_GT(m.counters["store.records_written"], 0u);
  std::filesystem::remove_all(cfg.data_dir);
}

}  // namespace
}  // namespace algorand
