// Ed25519 tests: RFC 8032 known-answer vectors plus behavioural properties.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/hex.h"
#include "src/common/rng.h"
#include "src/crypto/ed25519.h"

namespace algorand {
namespace {

Ed25519KeyPair KeyFromRng(DeterministicRng* rng) {
  FixedBytes<32> seed;
  rng->FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

// RFC 8032 §7.1 TEST 1, verification side: the published public key and
// signature over the empty message must verify (and reject perturbations).
TEST(Ed25519Test, Rfc8032Test1VerifyKat) {
  PublicKey pk =
      PublicKey::FromHex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  Signature sig =
      Signature::FromHex("e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
                         "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  ASSERT_FALSE(pk.is_zero());
  ASSERT_FALSE(sig.is_zero());
  EXPECT_TRUE(Ed25519Verify(pk, std::span<const uint8_t>(), sig));
  // The same signature must not verify for a non-empty message.
  EXPECT_FALSE(Ed25519Verify(pk, BytesOfString("x"), sig));
  Signature bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(Ed25519Verify(pk, std::span<const uint8_t>(), bad));
}

// RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
TEST(Ed25519Test, Rfc8032Test2) {
  FixedBytes<32> seed =
      FixedBytes<32>::FromHex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  Ed25519KeyPair kp = Ed25519KeyFromSeed(seed);
  EXPECT_EQ(kp.public_key.ToHex(),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  uint8_t msg[1] = {0x72};
  Signature sig = Ed25519Sign(kp, msg);
  EXPECT_EQ(sig.ToHex(),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
}

TEST(Ed25519Test, SignVerifyRoundTrip) {
  DeterministicRng rng(100);
  for (int i = 0; i < 10; ++i) {
    Ed25519KeyPair kp = KeyFromRng(&rng);
    std::vector<uint8_t> msg(static_cast<size_t>(1 + i * 13));
    rng.FillBytes(msg.data(), msg.size());
    Signature sig = Ed25519Sign(kp, msg);
    EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
  }
}

TEST(Ed25519Test, SigningIsDeterministic) {
  DeterministicRng rng(101);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("hello algorand");
  EXPECT_EQ(Ed25519Sign(kp, msg), Ed25519Sign(kp, msg));
}

TEST(Ed25519Test, VerifyRejectsWrongMessage) {
  DeterministicRng rng(102);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  Signature sig = Ed25519Sign(kp, BytesOfString("message A"));
  EXPECT_FALSE(Ed25519Verify(kp.public_key, BytesOfString("message B"), sig));
}

TEST(Ed25519Test, VerifyRejectsWrongKey) {
  DeterministicRng rng(103);
  Ed25519KeyPair kp1 = KeyFromRng(&rng);
  Ed25519KeyPair kp2 = KeyFromRng(&rng);
  auto msg = BytesOfString("message");
  Signature sig = Ed25519Sign(kp1, msg);
  EXPECT_FALSE(Ed25519Verify(kp2.public_key, msg, sig));
}

TEST(Ed25519Test, VerifyRejectsBitFlips) {
  DeterministicRng rng(104);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("flip test");
  Signature sig = Ed25519Sign(kp, msg);
  for (size_t i = 0; i < sig.size(); i += 7) {
    Signature bad = sig;
    bad[i] ^= 1;
    EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad)) << "flip at byte " << i;
  }
}

TEST(Ed25519Test, VerifyRejectsNonCanonicalS) {
  // S >= L must be rejected (malleability protection).
  DeterministicRng rng(105);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("canon");
  Signature sig = Ed25519Sign(kp, msg);
  Signature bad = sig;
  // Set S to L itself: bytes 32..63 little-endian.
  auto l_hex = HexDecode("edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  ASSERT_TRUE(l_hex.has_value());
  for (int i = 0; i < 32; ++i) {
    bad[32 + static_cast<size_t>(i)] = (*l_hex)[static_cast<size_t>(i)];
  }
  EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad));
}

TEST(Ed25519Test, VerifyRejectsGarbagePublicKey) {
  // An all-0xff key is not a valid point encoding.
  PublicKey bad;
  for (size_t i = 0; i < bad.size(); ++i) {
    bad[i] = 0xff;
  }
  Signature sig;
  EXPECT_FALSE(Ed25519Verify(bad, BytesOfString("x"), sig));
}

TEST(Ed25519Test, DistinctSeedsDistinctKeys) {
  DeterministicRng rng(106);
  std::vector<PublicKey> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(KeyFromRng(&rng).public_key);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

// RFC 8032 §7.1 TEST 3 (two-byte message af82): full sign KAT plus agreement
// between the double-scalar verify and the legacy two-multiplication verify.
TEST(Ed25519Test, Rfc8032Test3) {
  FixedBytes<32> seed =
      FixedBytes<32>::FromHex("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  Ed25519KeyPair kp = Ed25519KeyFromSeed(seed);
  EXPECT_EQ(kp.public_key.ToHex(),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025");
  uint8_t msg[2] = {0xaf, 0x82};
  Signature sig = Ed25519Sign(kp, msg);
  EXPECT_EQ(sig.ToHex(),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a");
  EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
  EXPECT_TRUE(Ed25519VerifyLegacy(kp.public_key, msg, sig));
}

// The w-NAF verify must make the same accept/reject decision as the legacy
// verify on every input: valid signatures, every single-byte corruption of
// the signature, and corrupted keys/messages.
TEST(Ed25519Test, LegacyDecisionParity) {
  DeterministicRng rng(108);
  for (int i = 0; i < 5; ++i) {
    Ed25519KeyPair kp = KeyFromRng(&rng);
    std::vector<uint8_t> msg(static_cast<size_t>(17 * i + 1));
    rng.FillBytes(msg.data(), msg.size());
    Signature sig = Ed25519Sign(kp, msg);
    EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
    EXPECT_TRUE(Ed25519VerifyLegacy(kp.public_key, msg, sig));
    for (size_t b = 0; b < sig.size(); b += 5) {
      Signature bad = sig;
      bad[b] ^= static_cast<uint8_t>(1 + (b % 7));
      EXPECT_EQ(Ed25519Verify(kp.public_key, msg, bad),
                Ed25519VerifyLegacy(kp.public_key, msg, bad))
          << "sig corruption at byte " << b;
    }
    PublicKey bad_pk = kp.public_key;
    bad_pk[static_cast<size_t>(i) % 32] ^= 0x40;
    EXPECT_EQ(Ed25519Verify(bad_pk, msg, sig), Ed25519VerifyLegacy(bad_pk, msg, sig));
    std::vector<uint8_t> bad_msg = msg;
    bad_msg[0] ^= 1;
    EXPECT_EQ(Ed25519Verify(kp.public_key, bad_msg, sig),
              Ed25519VerifyLegacy(kp.public_key, bad_msg, sig));
  }
}

// Crafted point encodings substituted for R and for A. The two verifiers
// compare R differently (byte re-encoding vs projective GeEq), so these
// pin the decisions down AND assert parity for each encoding.
TEST(Ed25519Test, CraftedEncodingsRejectedIdentically) {
  const char* encodings[] = {
      // Canonical identity (y = 1).
      "0100000000000000000000000000000000000000000000000000000000000000",
      // Non-canonical identity: y = p + 1, decodes to the identity point.
      "eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
      // y = p: decodes to y = 0, a valid point of order 4.
      "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
      // "-0": x sign bit set on y = 1; not a valid encoding at all.
      "0100000000000000000000000000000000000000000000000000000000000080",
  };
  DeterministicRng rng(109);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("crafted encodings");
  Signature sig = Ed25519Sign(kp, msg);
  for (const char* hex : encodings) {
    auto enc = HexDecode(hex);
    ASSERT_TRUE(enc.has_value());
    // Substituted for R: the challenge hash changes, so the equation cannot
    // hold; both paths must reject.
    Signature bad_r = sig;
    for (int i = 0; i < 32; ++i) {
      bad_r[static_cast<size_t>(i)] = (*enc)[static_cast<size_t>(i)];
    }
    EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad_r)) << hex;
    EXPECT_FALSE(Ed25519VerifyLegacy(kp.public_key, msg, bad_r)) << hex;
    // Substituted for A: a small-order or invalid key with someone else's
    // signature; both paths must reject.
    PublicKey bad_pk;
    for (int i = 0; i < 32; ++i) {
      bad_pk[static_cast<size_t>(i)] = (*enc)[static_cast<size_t>(i)];
    }
    EXPECT_EQ(Ed25519Verify(bad_pk, msg, sig), Ed25519VerifyLegacy(bad_pk, msg, sig)) << hex;
    EXPECT_FALSE(Ed25519Verify(bad_pk, msg, sig)) << hex;
  }
}

TEST(Ed25519Test, VerifyRejectsHighBitS) {
  // S with the top bit forced (far above L) must be rejected by both paths.
  DeterministicRng rng(110);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("high S");
  Signature sig = Ed25519Sign(kp, msg);
  Signature bad = sig;
  bad[63] |= 0x80;
  EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad));
  EXPECT_FALSE(Ed25519VerifyLegacy(kp.public_key, msg, bad));
}

TEST(Ed25519Test, EmptyAndLargeMessages) {
  DeterministicRng rng(107);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  std::vector<uint8_t> empty;
  Signature s1 = Ed25519Sign(kp, empty);
  EXPECT_TRUE(Ed25519Verify(kp.public_key, empty, s1));

  std::vector<uint8_t> big(100 * 1024);
  rng.FillBytes(big.data(), big.size());
  Signature s2 = Ed25519Sign(kp, big);
  EXPECT_TRUE(Ed25519Verify(kp.public_key, big, s2));
  big[50000] ^= 1;
  EXPECT_FALSE(Ed25519Verify(kp.public_key, big, s2));
}

}  // namespace
}  // namespace algorand
