// Ed25519 tests: RFC 8032 known-answer vectors plus behavioural properties.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/hex.h"
#include "src/common/rng.h"
#include "src/crypto/ed25519.h"

namespace algorand {
namespace {

Ed25519KeyPair KeyFromRng(DeterministicRng* rng) {
  FixedBytes<32> seed;
  rng->FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

// RFC 8032 §7.1 TEST 1, verification side: the published public key and
// signature over the empty message must verify (and reject perturbations).
TEST(Ed25519Test, Rfc8032Test1VerifyKat) {
  PublicKey pk =
      PublicKey::FromHex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  Signature sig =
      Signature::FromHex("e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
                         "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  ASSERT_FALSE(pk.is_zero());
  ASSERT_FALSE(sig.is_zero());
  EXPECT_TRUE(Ed25519Verify(pk, std::span<const uint8_t>(), sig));
  // The same signature must not verify for a non-empty message.
  EXPECT_FALSE(Ed25519Verify(pk, BytesOfString("x"), sig));
  Signature bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(Ed25519Verify(pk, std::span<const uint8_t>(), bad));
}

// RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
TEST(Ed25519Test, Rfc8032Test2) {
  FixedBytes<32> seed =
      FixedBytes<32>::FromHex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  Ed25519KeyPair kp = Ed25519KeyFromSeed(seed);
  EXPECT_EQ(kp.public_key.ToHex(),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  uint8_t msg[1] = {0x72};
  Signature sig = Ed25519Sign(kp, msg);
  EXPECT_EQ(sig.ToHex(),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
}

TEST(Ed25519Test, SignVerifyRoundTrip) {
  DeterministicRng rng(100);
  for (int i = 0; i < 10; ++i) {
    Ed25519KeyPair kp = KeyFromRng(&rng);
    std::vector<uint8_t> msg(static_cast<size_t>(1 + i * 13));
    rng.FillBytes(msg.data(), msg.size());
    Signature sig = Ed25519Sign(kp, msg);
    EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
  }
}

TEST(Ed25519Test, SigningIsDeterministic) {
  DeterministicRng rng(101);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("hello algorand");
  EXPECT_EQ(Ed25519Sign(kp, msg), Ed25519Sign(kp, msg));
}

TEST(Ed25519Test, VerifyRejectsWrongMessage) {
  DeterministicRng rng(102);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  Signature sig = Ed25519Sign(kp, BytesOfString("message A"));
  EXPECT_FALSE(Ed25519Verify(kp.public_key, BytesOfString("message B"), sig));
}

TEST(Ed25519Test, VerifyRejectsWrongKey) {
  DeterministicRng rng(103);
  Ed25519KeyPair kp1 = KeyFromRng(&rng);
  Ed25519KeyPair kp2 = KeyFromRng(&rng);
  auto msg = BytesOfString("message");
  Signature sig = Ed25519Sign(kp1, msg);
  EXPECT_FALSE(Ed25519Verify(kp2.public_key, msg, sig));
}

TEST(Ed25519Test, VerifyRejectsBitFlips) {
  DeterministicRng rng(104);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("flip test");
  Signature sig = Ed25519Sign(kp, msg);
  for (size_t i = 0; i < sig.size(); i += 7) {
    Signature bad = sig;
    bad[i] ^= 1;
    EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad)) << "flip at byte " << i;
  }
}

TEST(Ed25519Test, VerifyRejectsNonCanonicalS) {
  // S >= L must be rejected (malleability protection).
  DeterministicRng rng(105);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto msg = BytesOfString("canon");
  Signature sig = Ed25519Sign(kp, msg);
  Signature bad = sig;
  // Set S to L itself: bytes 32..63 little-endian.
  auto l_hex = HexDecode("edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  ASSERT_TRUE(l_hex.has_value());
  for (int i = 0; i < 32; ++i) {
    bad[32 + static_cast<size_t>(i)] = (*l_hex)[static_cast<size_t>(i)];
  }
  EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad));
}

TEST(Ed25519Test, VerifyRejectsGarbagePublicKey) {
  // An all-0xff key is not a valid point encoding.
  PublicKey bad;
  for (size_t i = 0; i < bad.size(); ++i) {
    bad[i] = 0xff;
  }
  Signature sig;
  EXPECT_FALSE(Ed25519Verify(bad, BytesOfString("x"), sig));
}

TEST(Ed25519Test, DistinctSeedsDistinctKeys) {
  DeterministicRng rng(106);
  std::vector<PublicKey> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(KeyFromRng(&rng).public_key);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Ed25519Test, EmptyAndLargeMessages) {
  DeterministicRng rng(107);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  std::vector<uint8_t> empty;
  Signature s1 = Ed25519Sign(kp, empty);
  EXPECT_TRUE(Ed25519Verify(kp.public_key, empty, s1));

  std::vector<uint8_t> big(100 * 1024);
  rng.FillBytes(big.data(), big.size());
  Signature s2 = Ed25519Sign(kp, big);
  EXPECT_TRUE(Ed25519Verify(kp.public_key, big, s2));
  big[50000] ^= 1;
  EXPECT_FALSE(Ed25519Verify(kp.public_key, big, s2));
}

}  // namespace
}  // namespace algorand
