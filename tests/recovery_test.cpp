// Fork-recovery (§8.2) and catch-up (§8.3) tests.
#include <gtest/gtest.h>

#include "src/core/catchup.h"
#include "src/core/sim_harness.h"

namespace algorand {
namespace {

HarnessConfig RecoveryConfig(uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.max_steps = 9;  // Hang quickly when stuck.
  cfg.params.recovery_interval = Minutes(10);
  cfg.latency = HarnessConfig::Latency::kUniform;
  // Recovery logic is crypto-agnostic; the Sim backends keep these long
  // partition scenarios fast. Real-crypto paths are covered elsewhere.
  cfg.use_sim_crypto = true;
  return cfg;
}

TEST(RecoveryTest, NodesHangDuringLongPartition) {
  SimHarness h(RecoveryConfig(1));
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  // Partition for long enough that BinaryBA* exhausts max_steps (9 steps at
  // 20 s plus reduction ~= 4 minutes).
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, 0, Minutes(9)));
  h.Start();
  h.sim().RunUntil(Minutes(9));
  size_t hung = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    hung += h.node(i).hung() || h.node(i).in_recovery();
  }
  EXPECT_GE(hung, h.node_count() / 2);
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(RecoveryTest, RecoversAfterPartitionHealsAndResumesProgress) {
  SimHarness h(RecoveryConfig(2));
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, 0, Minutes(9)));
  h.Start();
  // Recovery fires at the 10-minute boundary (after the heal); give it time
  // to converge and then make fresh progress.
  h.sim().RunUntil(Minutes(40));

  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;

  size_t recovered = 0;
  uint64_t min_chain = UINT64_MAX;
  for (size_t i = 0; i < h.node_count(); ++i) {
    recovered += h.node(i).recoveries_completed() > 0;
    min_chain = std::min<uint64_t>(min_chain, h.node(i).ledger().chain_length());
    EXPECT_FALSE(h.node(i).hung()) << "node " << i << " still hung";
  }
  EXPECT_GT(recovered, h.node_count() / 2);
  // Progress resumed beyond the recovery block.
  EXPECT_GT(min_chain, 2u);
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(RecoveryTest, NoRecoveryTriggeredOnHealthyNetwork) {
  SimHarness h(RecoveryConfig(3));
  h.Start();
  h.sim().RunUntil(Minutes(25));  // Two recovery checks pass.
  for (size_t i = 0; i < h.node_count(); ++i) {
    EXPECT_EQ(h.node(i).recoveries_completed(), 0u);
    EXPECT_FALSE(h.node(i).in_recovery());
  }
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(RecoveryTest, FinalBlocksSurviveRecovery) {
  // Run a few healthy (final) rounds, then partition until both sides hang,
  // heal, recover: the pre-partition final prefix must be untouched on every
  // node afterwards.
  SimHarness h(RecoveryConfig(8));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  Hash256 final_tip = h.node(0).ledger().BlockAtRound(2).Hash();
  ASSERT_EQ(h.node(0).ledger().ConsensusAtRound(2), ConsensusKind::kFinal);

  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  SimTime heal = h.sim().now() + Minutes(9);
  h.SetNetworkAdversary(
      std::make_unique<PartitionAdversary>(group_a, h.sim().now(), heal));
  h.sim().RunUntil(heal + Minutes(25));

  for (size_t i = 0; i < h.node_count(); ++i) {
    const Ledger& ledger = h.node(i).ledger();
    ASSERT_GE(ledger.chain_length(), 3u) << "node " << i;
    EXPECT_EQ(ledger.BlockAtRound(2).Hash(), final_tip) << "node " << i;
  }
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(RecoveryTest, RecoveryAnchorsAtHighestFinalRound) {
  // After recovery, every node's chain extends the final prefix; rounds
  // beyond it that were only tentative on a dead fork may be truncated.
  SimHarness h(RecoveryConfig(9));
  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  SimTime start = h.sim().now();
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, start, start + Minutes(9)));
  h.sim().RunUntil(start + Minutes(35));
  EXPECT_TRUE(h.ChainsConsistent());
  // Everyone moved past recovery and is making progress again.
  for (size_t i = 0; i < h.node_count(); ++i) {
    EXPECT_FALSE(h.node(i).in_recovery()) << "node " << i;
    EXPECT_FALSE(h.node(i).hung()) << "node " << i;
  }
}

TEST(CatchupTest, NewUserValidatesChainFromCertificates) {
  HarnessConfig cfg = RecoveryConfig(4);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(2)));

  // Collect blocks + certificates from node 0 as a bootstrap server would.
  const Node& server = h.node(0);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  for (uint64_t r = 1; r < server.ledger().chain_length(); ++r) {
    if (!server.certificates().count(r)) {
      break;
    }
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
  }
  ASSERT_GE(blocks.size(), 3u);

  CatchupResult result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, certs,
                                            h.vrf(), h.signer());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.verified_rounds, blocks.size());
  EXPECT_EQ(result.ledger->tip_hash(), blocks.back().Hash());
}

TEST(CatchupTest, FinalCertificateMarksChainFinal) {
  HarnessConfig cfg = RecoveryConfig(5);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  const Node& server = h.node(0);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  uint64_t last = 0;
  for (uint64_t r = 1; r < server.ledger().chain_length(); ++r) {
    if (!server.certificates().count(r)) {
      break;
    }
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
    last = r;
  }
  ASSERT_GE(last, 2u);
  // Find the highest final certificate at or below `last`.
  const Certificate* final_cert = nullptr;
  for (uint64_t r = last; r >= 1; --r) {
    auto it = server.final_certificates().find(r);
    if (it != server.final_certificates().end()) {
      final_cert = &it->second;
      break;
    }
  }
  ASSERT_NE(final_cert, nullptr);
  CatchupResult result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, certs,
                                            h.vrf(), h.signer(), final_cert);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.ledger->ConsensusAtRound(final_cert->round), ConsensusKind::kFinal);
  for (uint64_t r = 1; r < final_cert->round; ++r) {
    EXPECT_EQ(result.ledger->ConsensusAtRound(r), ConsensusKind::kFinal);
  }
}

TEST(CatchupTest, RejectsTamperedHistory) {
  HarnessConfig cfg = RecoveryConfig(6);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  const Node& server = h.node(0);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  for (uint64_t r = 1; r <= 2; ++r) {
    ASSERT_TRUE(server.certificates().count(r));
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
  }

  // Tamper with a block: the certificate no longer covers it.
  auto tampered_blocks = blocks;
  tampered_blocks[0].timestamp += 1;
  auto result = CatchupFromGenesis(h.genesis().config, cfg.params, tampered_blocks, certs,
                                   h.vrf(), h.signer());
  EXPECT_FALSE(result.ok);

  // Swap certificates between rounds: context mismatch.
  auto swapped = certs;
  std::swap(swapped[0], swapped[1]);
  result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, swapped, h.vrf(),
                              h.signer());
  EXPECT_FALSE(result.ok);

  // Truncate certificate votes below the threshold.
  auto weak = certs;
  weak[0].votes.resize(1);
  result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, weak, h.vrf(), h.signer());
  EXPECT_FALSE(result.ok);
}

TEST(CatchupTest, ShardedStorageKeepsOnlyOwnRounds) {
  HarnessConfig cfg = RecoveryConfig(7);
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>(id, sim, gossip, key, genesis, params, crypto);
    node->ConfigureCertificateSharding(4);
    return node;
  };
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(4, Hours(3)));
  for (size_t i = 0; i < 4; ++i) {
    for (const auto& [round, cert] : h.node(i).certificates()) {
      EXPECT_EQ(round % 4, i % 4) << "node " << i << " stored round " << round;
    }
  }
  // Together the first four nodes cover every round.
  std::set<uint64_t> covered;
  for (size_t i = 0; i < 4; ++i) {
    for (const auto& [round, cert] : h.node(i).certificates()) {
      covered.insert(round);
    }
  }
  for (uint64_t r = 1; r <= 4; ++r) {
    EXPECT_TRUE(covered.count(r)) << "round " << r;
  }
}

}  // namespace
}  // namespace algorand
