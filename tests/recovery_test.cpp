// Fork-recovery (§8.2) and catch-up (§8.3) tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/catchup.h"
#include "src/core/sim_harness.h"

namespace algorand {
namespace {

// On liveness failures, dump per-node chain state and the catch-up counters;
// sorting out "who wedged where" from the raw assert alone is hopeless.
void DumpCatchupDiagnostics(SimHarness& h) {
  for (size_t i = 0; i < h.node_count(); ++i) {
    fprintf(stderr, "node %zu len=%llu catchup=%d completed=%llu hung=%d recovery=%d\n", i,
            (unsigned long long)h.node(i).ledger().chain_length(), (int)h.node(i).in_catchup(),
            (unsigned long long)h.node(i).catchups_completed(), (int)h.node(i).hung(),
            (int)h.node(i).in_recovery());
  }
  auto m = h.AggregateMetrics();
  for (const char* k : {"catchup.sessions", "catchup.requests", "catchup.served",
                        "catchup.timeouts", "catchup.bad_batches", "catchup.blocks_applied",
                        "catchup.completed", "catchup.peer_rotations", "catchup.aborted"}) {
    fprintf(stderr, "%s=%llu\n", k, (unsigned long long)m.counters[k]);
  }
}

HarnessConfig RecoveryConfig(uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.max_steps = 9;  // Hang quickly when stuck.
  cfg.params.recovery_interval = Minutes(10);
  cfg.latency = HarnessConfig::Latency::kUniform;
  // Recovery logic is crypto-agnostic; the Sim backends keep these long
  // partition scenarios fast. Real-crypto paths are covered elsewhere.
  cfg.use_sim_crypto = true;
  return cfg;
}

TEST(RecoveryTest, NodesHangDuringLongPartition) {
  SimHarness h(RecoveryConfig(1));
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  // Partition for long enough that BinaryBA* exhausts max_steps (9 steps at
  // 20 s plus reduction ~= 4 minutes).
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, 0, Minutes(9)));
  h.Start();
  h.sim().RunUntil(Minutes(9));
  size_t hung = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    hung += h.node(i).hung() || h.node(i).in_recovery();
  }
  EXPECT_GE(hung, h.node_count() / 2);
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(RecoveryTest, RecoversAfterPartitionHealsAndResumesProgress) {
  SimHarness h(RecoveryConfig(2));
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, 0, Minutes(9)));
  h.Start();
  // Recovery fires at the 10-minute boundary (after the heal); give it time
  // to converge and then make fresh progress.
  h.sim().RunUntil(Minutes(40));

  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;

  size_t recovered = 0;
  uint64_t min_chain = UINT64_MAX;
  for (size_t i = 0; i < h.node_count(); ++i) {
    recovered += h.node(i).recoveries_completed() > 0;
    min_chain = std::min<uint64_t>(min_chain, h.node(i).ledger().chain_length());
    EXPECT_FALSE(h.node(i).hung()) << "node " << i << " still hung";
  }
  EXPECT_GT(recovered, h.node_count() / 2);
  // Progress resumed beyond the recovery block.
  EXPECT_GT(min_chain, 2u);
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(RecoveryTest, NoRecoveryTriggeredOnHealthyNetwork) {
  SimHarness h(RecoveryConfig(3));
  h.Start();
  h.sim().RunUntil(Minutes(25));  // Two recovery checks pass.
  for (size_t i = 0; i < h.node_count(); ++i) {
    EXPECT_EQ(h.node(i).recoveries_completed(), 0u);
    EXPECT_FALSE(h.node(i).in_recovery());
  }
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(RecoveryTest, FinalBlocksSurviveRecovery) {
  // Run a few healthy (final) rounds, then partition until both sides hang,
  // heal, recover: the pre-partition final prefix must be untouched on every
  // node afterwards.
  SimHarness h(RecoveryConfig(8));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  Hash256 final_tip = h.node(0).ledger().BlockAtRound(2).Hash();
  ASSERT_EQ(h.node(0).ledger().ConsensusAtRound(2), ConsensusKind::kFinal);

  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  SimTime heal = h.sim().now() + Minutes(9);
  h.SetNetworkAdversary(
      std::make_unique<PartitionAdversary>(group_a, h.sim().now(), heal));
  h.sim().RunUntil(heal + Minutes(25));

  for (size_t i = 0; i < h.node_count(); ++i) {
    const Ledger& ledger = h.node(i).ledger();
    ASSERT_GE(ledger.chain_length(), 3u) << "node " << i;
    EXPECT_EQ(ledger.BlockAtRound(2).Hash(), final_tip) << "node " << i;
  }
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(RecoveryTest, RecoveryAnchorsAtHighestFinalRound) {
  // After recovery, every node's chain extends the final prefix; rounds
  // beyond it that were only tentative on a dead fork may be truncated.
  SimHarness h(RecoveryConfig(9));
  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  SimTime start = h.sim().now();
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, start, start + Minutes(9)));
  h.sim().RunUntil(start + Minutes(35));
  EXPECT_TRUE(h.ChainsConsistent());
  // Everyone moved past recovery and is making progress again.
  for (size_t i = 0; i < h.node_count(); ++i) {
    EXPECT_FALSE(h.node(i).in_recovery()) << "node " << i;
    EXPECT_FALSE(h.node(i).hung()) << "node " << i;
  }
}

TEST(CatchupTest, NewUserValidatesChainFromCertificates) {
  HarnessConfig cfg = RecoveryConfig(4);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(2)));

  // Collect blocks + certificates from node 0 as a bootstrap server would.
  const Node& server = h.node(0);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  for (uint64_t r = 1; r < server.ledger().chain_length(); ++r) {
    if (!server.certificates().count(r)) {
      break;
    }
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
  }
  ASSERT_GE(blocks.size(), 3u);

  CatchupResult result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, certs,
                                            h.vrf(), h.signer());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.verified_rounds, blocks.size());
  EXPECT_EQ(result.ledger->tip_hash(), blocks.back().Hash());
}

TEST(CatchupTest, FinalCertificateMarksChainFinal) {
  HarnessConfig cfg = RecoveryConfig(5);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  const Node& server = h.node(0);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  uint64_t last = 0;
  for (uint64_t r = 1; r < server.ledger().chain_length(); ++r) {
    if (!server.certificates().count(r)) {
      break;
    }
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
    last = r;
  }
  ASSERT_GE(last, 2u);
  // Find the highest final certificate at or below `last`.
  const Certificate* final_cert = nullptr;
  for (uint64_t r = last; r >= 1; --r) {
    auto it = server.final_certificates().find(r);
    if (it != server.final_certificates().end()) {
      final_cert = &it->second;
      break;
    }
  }
  ASSERT_NE(final_cert, nullptr);
  CatchupResult result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, certs,
                                            h.vrf(), h.signer(), final_cert);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.ledger->ConsensusAtRound(final_cert->round), ConsensusKind::kFinal);
  for (uint64_t r = 1; r < final_cert->round; ++r) {
    EXPECT_EQ(result.ledger->ConsensusAtRound(r), ConsensusKind::kFinal);
  }
}

TEST(CatchupTest, RejectsTamperedHistory) {
  HarnessConfig cfg = RecoveryConfig(6);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  const Node& server = h.node(0);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  for (uint64_t r = 1; r <= 2; ++r) {
    ASSERT_TRUE(server.certificates().count(r));
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
  }

  // Tamper with a block: the certificate no longer covers it.
  auto tampered_blocks = blocks;
  tampered_blocks[0].timestamp += 1;
  auto result = CatchupFromGenesis(h.genesis().config, cfg.params, tampered_blocks, certs,
                                   h.vrf(), h.signer());
  EXPECT_FALSE(result.ok);

  // Swap certificates between rounds: context mismatch.
  auto swapped = certs;
  std::swap(swapped[0], swapped[1]);
  result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, swapped, h.vrf(),
                              h.signer());
  EXPECT_FALSE(result.ok);

  // Truncate certificate votes below the threshold.
  auto weak = certs;
  weak[0].votes.resize(1);
  result = CatchupFromGenesis(h.genesis().config, cfg.params, blocks, weak, h.vrf(), h.signer());
  EXPECT_FALSE(result.ok);
}

TEST(CatchupTest, ShardedStorageKeepsOnlyOwnRounds) {
  HarnessConfig cfg = RecoveryConfig(7);
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>(id, sim, gossip, key, genesis, params, crypto);
    node->ConfigureCertificateSharding(4);
    return node;
  };
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(4, Hours(3)));
  for (size_t i = 0; i < 4; ++i) {
    for (const auto& [round, cert] : h.node(i).certificates()) {
      EXPECT_EQ(round % 4, i % 4) << "node " << i << " stored round " << round;
    }
  }
  // Together the first four nodes cover every round.
  std::set<uint64_t> covered;
  for (size_t i = 0; i < 4; ++i) {
    for (const auto& [round, cert] : h.node(i).certificates()) {
      covered.insert(round);
    }
  }
  for (uint64_t r = 1; r <= 4; ++r) {
    EXPECT_TRUE(covered.count(r)) << "round " << r;
  }
}

// --- Crash/restart fault injection + live catch-up ---

TEST(CrashRestartTest, CrashedNodeCatchesUpAfterRestartFromSnapshot) {
  SimHarness h(RecoveryConfig(10));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));

  h.KillNode(5);
  EXPECT_FALSE(h.node_alive(5));
  uint64_t len_at_crash = h.node(5).ledger().chain_length();

  // The network keeps agreeing without the crashed node.
  ASSERT_TRUE(h.RunRounds(5, Hours(1)));

  h.RestartNode(5, /*from_snapshot=*/true);
  EXPECT_TRUE(h.node_alive(5));
  // Durable state survived: the restarted ledger resumes from the snapshot.
  EXPECT_GE(h.node(5).ledger().chain_length(), len_at_crash);

  // RunRounds waits on every live node, so this passing means node 5 caught
  // up to the tip and rejoined live BA*.
  ASSERT_TRUE(h.RunRounds(9, Hours(1)));
  EXPECT_GE(h.node(5).catchups_completed(), 1u);
  EXPECT_FALSE(h.node(5).in_catchup());

  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  uint64_t max_len = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    max_len = std::max<uint64_t>(max_len, h.node(i).ledger().chain_length());
  }
  EXPECT_GE(h.node(5).ledger().chain_length() + 1, max_len);
}

TEST(CrashRestartTest, FreshRestartRejoinsFromGenesis) {
  // from_snapshot=false models losing the disk: the node rejoins with an
  // empty ledger and must re-fetch the whole chain.
  SimHarness h(RecoveryConfig(11));
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(1)));
  h.KillNode(7);
  ASSERT_TRUE(h.RunRounds(5, Hours(1)));
  h.RestartNode(7, /*from_snapshot=*/false);
  EXPECT_EQ(h.node(7).ledger().chain_length(), 1u);
  ASSERT_TRUE(h.RunRounds(9, Hours(2)));
  EXPECT_GE(h.node(7).catchups_completed(), 1u);
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(CrashRestartTest, RollingChurnTwentyPercentConverges) {
  // 4 of 20 nodes (20%) crash on a staggered schedule and restart ~60
  // simulated seconds later — a rolling membership churn. Everyone must end
  // on one chain with zero safety violations.
  HarnessConfig cfg = RecoveryConfig(12);
  for (size_t i = 0; i < 4; ++i) {
    HarnessConfig::CrashEvent ev;
    ev.node = 4 + i;  // Staggered: one down at a time.
    ev.crash_at = Seconds(40 + 40 * static_cast<double>(i));
    ev.restart_at = Seconds(100 + 40 * static_cast<double>(i));
    ev.from_snapshot = (i % 2 == 0);  // Mix snapshot and fresh rejoins.
    cfg.crash_schedule.push_back(ev);
  }
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(14, Hours(2)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  MetricsSnapshot m = h.AggregateMetrics();
  EXPECT_EQ(m.counters["restart.kills"], 4u);
  EXPECT_EQ(m.counters["restart.restarts"], 4u);
  EXPECT_GE(m.counters["catchup.completed"], 4u);
  EXPECT_GE(m.counters["catchup.blocks_applied"], 4u);
  // Byte-identical chains at equal rounds.
  uint64_t common = UINT64_MAX;
  for (size_t i = 0; i < h.node_count(); ++i) {
    common = std::min<uint64_t>(common, h.node(i).ledger().chain_length());
  }
  for (uint64_t r = 1; r < common; ++r) {
    std::vector<uint8_t> expect = h.node(0).ledger().BlockAtRound(r).Serialize();
    for (size_t i = 1; i < h.node_count(); ++i) {
      EXPECT_EQ(h.node(i).ledger().BlockAtRound(r).Serialize(), expect)
          << "node " << i << " round " << r;
    }
  }
}

TEST(CrashRestartTest, CatchupFillsGapsAcrossShardedCertificateStorage) {
  // Every node stores only 1-in-4 certificates (shard_count=4). A fresh
  // restart must assemble the full chain from partial batches served by
  // different peers.
  HarnessConfig cfg = RecoveryConfig(13);
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>(id, sim, gossip, key, genesis, params, crypto);
    node->ConfigureCertificateSharding(4);
    return node;
  };
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  h.KillNode(6);
  ASSERT_TRUE(h.RunRounds(6, Hours(1)));
  h.RestartNode(6, /*from_snapshot=*/false);
  bool ok = h.RunRounds(10, Hours(3));
  if (!ok) {
    DumpCatchupDiagnostics(h);
  }
  ASSERT_TRUE(ok);
  EXPECT_GE(h.node(6).catchups_completed(), 1u);
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  // Sharding discipline also holds for certificates learned via catch-up.
  for (const auto& [round, cert] : h.node(6).certificates()) {
    EXPECT_EQ(round % 4, 6u % 4) << "round " << round;
  }
}

TEST(CrashRestartTest, ChaosTwentyNodesCrashesAndLossStillAgree) {
  // The acceptance scenario: 20 nodes, crashes hitting 4 distinct nodes,
  // 20% uniform message loss. The network reaches consensus, restarted
  // nodes converge to within one round of the tip, zero safety violations,
  // byte-identical chains at equal rounds.
  HarnessConfig cfg = RecoveryConfig(14);
  for (size_t i = 0; i < 4; ++i) {
    HarnessConfig::CrashEvent ev;
    ev.node = 3 + 4 * i;
    ev.crash_at = Seconds(30 + 35 * static_cast<double>(i));
    ev.restart_at = Seconds(95 + 35 * static_cast<double>(i));
    ev.from_snapshot = (i != 1);
    cfg.crash_schedule.push_back(ev);
  }
  SimHarness h(cfg);
  h.SetNetworkAdversary(std::make_unique<LossyAdversary>(0.2, 77));
  h.Start();
  ASSERT_TRUE(h.RunRounds(12, Hours(4)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  uint64_t max_len = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    max_len = std::max<uint64_t>(max_len, h.node(i).ledger().chain_length());
  }
  for (size_t i = 0; i < h.node_count(); ++i) {
    EXPECT_GE(h.node(i).ledger().chain_length() + 1, max_len) << "node " << i;
  }
  uint64_t common = UINT64_MAX;
  for (size_t i = 0; i < h.node_count(); ++i) {
    common = std::min<uint64_t>(common, h.node(i).ledger().chain_length());
  }
  for (uint64_t r = 1; r < common; ++r) {
    std::vector<uint8_t> expect = h.node(0).ledger().BlockAtRound(r).Serialize();
    for (size_t i = 1; i < h.node_count(); ++i) {
      ASSERT_EQ(h.node(i).ledger().BlockAtRound(r).Serialize(), expect)
          << "node " << i << " round " << r;
    }
  }
  MetricsSnapshot m = h.AggregateMetrics();
  EXPECT_EQ(m.counters["restart.kills"], 4u);
  EXPECT_EQ(m.counters["restart.restarts"], 4u);
  EXPECT_GE(m.counters["catchup.sessions"], 4u);
}

TEST(ChurnAdversaryTest, NetworkChurnTriggersLiveCatchup) {
  // ChurnAdversary cuts a rotating group off at the network layer (no
  // crash): returning nodes observe votes rounds ahead and catch up while
  // still holding their own ledgers.
  HarnessConfig cfg = RecoveryConfig(15);
  SimHarness h(cfg);
  // Groups of 4 (20%), offline 45 s out of every 90 s window.
  h.SetNetworkAdversary(
      std::make_unique<ChurnAdversary>(cfg.n_nodes, 4, Seconds(90), Seconds(45)));
  h.Start();
  bool ok = h.RunRounds(10, Hours(4));
  if (!ok) {
    DumpCatchupDiagnostics(h);
  }
  ASSERT_TRUE(ok);
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(CrashRestartTest, RestartFromDiskReplaysLogThenCatchesUp) {
  // With data_dir set, KillNode crashes the disk log (SIGKILL semantics) and
  // RestartNode rebuilds the node by replaying it — the snapshot path is
  // bypassed, so the disk is the durable state under test.
  HarnessConfig cfg = RecoveryConfig(30);
  cfg.data_dir = ::testing::TempDir() + "algorand_recovery_disk";
  cfg.store_fsync = FsyncPolicy::kEveryRound;
  cfg.store_background_writer = false;  // Deterministic I/O interleaving.
  std::filesystem::remove_all(cfg.data_dir);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(1)));
  ASSERT_NE(h.node_store(5), nullptr);
  EXPECT_GE(h.node_store(5)->max_round(), 3u);

  h.KillNode(5);
  EXPECT_EQ(h.node_store(5), nullptr);  // Crashed store parks with the node.
  ASSERT_TRUE(h.RunRounds(6, Hours(1)));

  h.RestartNode(5, /*from_snapshot=*/true);
  ASSERT_NE(h.node_store(5), nullptr);
  // The ledger was rebuilt from disk before catch-up ran: every round that
  // was durable at kill time is back, certificate-validated.
  EXPECT_GE(h.node_store(5)->replayed_rounds(), 3u);
  EXPECT_GE(h.node(5).ledger().chain_length(), 4u);

  ASSERT_TRUE(h.RunRounds(10, Hours(1)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  // The store kept following the chain after the restart.
  EXPECT_GE(h.node_store(5)->max_round(), 10u);
  MetricsSnapshot m = h.AggregateMetrics();
  EXPECT_GT(m.counters["store.replay_rounds"], 0u);
  EXPECT_GT(m.counters["store.records_written"], 0u);
  std::filesystem::remove_all(cfg.data_dir);
}

TEST(CrashRestartTest, FreshDiskRestartWipesLogAndRejoins) {
  HarnessConfig cfg = RecoveryConfig(31);
  cfg.data_dir = ::testing::TempDir() + "algorand_recovery_disk_fresh";
  cfg.store_background_writer = false;
  std::filesystem::remove_all(cfg.data_dir);
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(1)));
  h.KillNode(7);
  ASSERT_TRUE(h.RunRounds(5, Hours(1)));
  // from_snapshot=false models losing the disk: the log is wiped and the
  // node rejoins from genesis, re-fetching the chain via catch-up.
  h.RestartNode(7, /*from_snapshot=*/false);
  EXPECT_EQ(h.node(7).ledger().chain_length(), 1u);
  ASSERT_TRUE(h.RunRounds(9, Hours(2)));
  EXPECT_GE(h.node(7).catchups_completed(), 1u);
  EXPECT_TRUE(h.ChainsConsistent());
  // Catch-up results streamed back to the fresh log as they were applied.
  EXPECT_GE(h.node_store(7)->max_round(), 9u);
  std::filesystem::remove_all(cfg.data_dir);
}

TEST(CrashRestartTest, DiskChaosScheduleConvergesWithRealCertValidation) {
  // The rolling-churn scenario on disk-backed nodes: staggered crashes with
  // mixed replay/fresh restarts, every restart certificate-validating its
  // replayed log. Background writer on — the nondeterminism is confined to
  // I/O timing, never protocol decisions.
  HarnessConfig cfg = RecoveryConfig(32);
  cfg.data_dir = ::testing::TempDir() + "algorand_recovery_disk_chaos";
  std::filesystem::remove_all(cfg.data_dir);
  for (size_t i = 0; i < 4; ++i) {
    HarnessConfig::CrashEvent ev;
    ev.node = 4 + i;
    ev.crash_at = Seconds(40 + 40 * static_cast<double>(i));
    ev.restart_at = Seconds(100 + 40 * static_cast<double>(i));
    ev.from_snapshot = (i % 2 == 0);  // Mix disk replays and fresh rejoins.
    cfg.crash_schedule.push_back(ev);
  }
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(14, Hours(2)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  MetricsSnapshot m = h.AggregateMetrics();
  EXPECT_EQ(m.counters["restart.kills"], 4u);
  EXPECT_EQ(m.counters["restart.restarts"], 4u);
  std::filesystem::remove_all(cfg.data_dir);
}

TEST(RecoveryTest, DiskLogFollowsForkRecoveryAndReplaysAfterRestart) {
  // Partition long enough to force §8.2 fork recovery (ReplaceSuffix), which
  // mirrors to disk as a truncate record + replacement suffix. A node killed
  // and restarted afterwards must replay the post-fork chain.
  HarnessConfig cfg = RecoveryConfig(33);
  cfg.data_dir = ::testing::TempDir() + "algorand_recovery_disk_fork";
  cfg.store_background_writer = false;
  std::filesystem::remove_all(cfg.data_dir);
  SimHarness h(cfg);
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, 0, Minutes(9)));
  h.Start();
  h.sim().RunUntil(Minutes(40));
  auto safety = h.CheckSafety();
  ASSERT_TRUE(safety.ok) << safety.violation;

  uint64_t tip = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    tip = std::max<uint64_t>(tip, h.node(i).ledger().chain_length());
  }
  h.KillNode(3);
  ASSERT_TRUE(h.RunRounds(tip + 1, Hours(1)));
  h.RestartNode(3, /*from_snapshot=*/true);
  EXPECT_GT(h.node_store(3)->replayed_rounds(), 0u);
  ASSERT_TRUE(h.RunRounds(tip + 4, Hours(1)));
  EXPECT_TRUE(h.ChainsConsistent());
  auto safety2 = h.CheckSafety();
  EXPECT_TRUE(safety2.ok) << safety2.violation;
  std::filesystem::remove_all(cfg.data_dir);
}

TEST(SnapshotTest, RoundTripsThroughSerialization) {
  SimHarness h(RecoveryConfig(16));
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(1)));
  NodeSnapshot snap = h.node(2).Snapshot();
  ASSERT_FALSE(snap.blocks.empty());
  std::vector<uint8_t> bytes = snap.Serialize();
  auto back = NodeSnapshot::Deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->shard_count, snap.shard_count);
  ASSERT_EQ(back->blocks.size(), snap.blocks.size());
  for (size_t i = 0; i < snap.blocks.size(); ++i) {
    EXPECT_EQ(back->blocks[i].Hash(), snap.blocks[i].Hash());
  }
  EXPECT_EQ(back->kinds, snap.kinds);
  ASSERT_EQ(back->certificates.size(), snap.certificates.size());
  for (size_t i = 0; i < snap.certificates.size(); ++i) {
    EXPECT_EQ(back->certificates[i].Serialize(), snap.certificates[i].Serialize());
  }
  ASSERT_EQ(back->final_certificates.size(), snap.final_certificates.size());
}

}  // namespace
}  // namespace algorand
