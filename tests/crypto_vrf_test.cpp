// ECVRF and SimVrf behavioural tests: prove/verify round trips, uniqueness,
// tamper rejection, backend equivalence of the interface contract.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/vrf.h"

namespace algorand {
namespace {

Ed25519KeyPair KeyFromRng(DeterministicRng* rng) {
  FixedBytes<32> seed;
  rng->FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

class VrfBackendTest : public ::testing::TestWithParam<const VrfBackend*> {};

const EcVrf kEcVrf;
const SimVrf kSimVrf;

TEST_P(VrfBackendTest, ProveVerifyRoundTrip) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(200);
  for (int i = 0; i < 5; ++i) {
    Ed25519KeyPair kp = KeyFromRng(&rng);
    auto alpha = BytesOfString("round-" + std::to_string(i));
    VrfResult res = vrf->Prove(kp, alpha);
    auto verified = vrf->Verify(kp.public_key, alpha, res.proof);
    ASSERT_TRUE(verified.has_value());
    EXPECT_EQ(*verified, res.output);
  }
}

TEST_P(VrfBackendTest, OutputIsDeterministic) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(201);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto alpha = BytesOfString("same input");
  VrfResult a = vrf->Prove(kp, alpha);
  VrfResult b = vrf->Prove(kp, alpha);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.proof, b.proof);
}

TEST_P(VrfBackendTest, DifferentInputsGiveDifferentOutputs) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(202);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  std::set<VrfOutput> outputs;
  for (int i = 0; i < 20; ++i) {
    auto alpha = BytesOfString("alpha-" + std::to_string(i));
    outputs.insert(vrf->Prove(kp, alpha).output);
  }
  EXPECT_EQ(outputs.size(), 20u);
}

TEST_P(VrfBackendTest, DifferentKeysGiveDifferentOutputs) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(203);
  auto alpha = BytesOfString("shared alpha");
  std::set<VrfOutput> outputs;
  for (int i = 0; i < 20; ++i) {
    outputs.insert(vrf->Prove(KeyFromRng(&rng), alpha).output);
  }
  EXPECT_EQ(outputs.size(), 20u);
}

TEST_P(VrfBackendTest, VerifyRejectsWrongAlpha) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(204);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfResult res = vrf->Prove(kp, BytesOfString("alpha A"));
  EXPECT_FALSE(vrf->Verify(kp.public_key, BytesOfString("alpha B"), res.proof).has_value());
}

TEST_P(VrfBackendTest, VerifyRejectsWrongKey) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(205);
  Ed25519KeyPair kp1 = KeyFromRng(&rng);
  Ed25519KeyPair kp2 = KeyFromRng(&rng);
  auto alpha = BytesOfString("alpha");
  VrfResult res = vrf->Prove(kp1, alpha);
  EXPECT_FALSE(vrf->Verify(kp2.public_key, alpha, res.proof).has_value());
}

TEST_P(VrfBackendTest, VerifyRejectsTamperedProof) {
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(206);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  auto alpha = BytesOfString("tamper");
  VrfResult res = vrf->Prove(kp, alpha);
  for (size_t i = 0; i < res.proof.size(); i += 11) {
    VrfProof bad = res.proof;
    bad[i] ^= 0x01;
    EXPECT_FALSE(vrf->Verify(kp.public_key, alpha, bad).has_value()) << "flip at byte " << i;
  }
}

TEST_P(VrfBackendTest, OutputBitsLookUniform) {
  // Count ones across many outputs; expect close to half. This is a smoke
  // test of the "essentially uniformly distributed" property sortition needs.
  const VrfBackend* vrf = GetParam();
  DeterministicRng rng(207);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  int ones = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    VrfOutput out = vrf->Prove(kp, BytesOfString("uniform-" + std::to_string(i))).output;
    for (size_t b = 0; b < out.size(); ++b) {
      ones += __builtin_popcount(out[b]);
      total += 8;
    }
  }
  double frac = static_cast<double>(ones) / total;
  EXPECT_NEAR(frac, 0.5, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Backends, VrfBackendTest, ::testing::Values(&kEcVrf, &kSimVrf),
                         [](const ::testing::TestParamInfo<const VrfBackend*>& info) {
                           return std::string(info.param->name());
                         });

TEST(EcVrfTest, ProofIsEightyBytes) {
  DeterministicRng rng(210);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfResult res = EcVrfProve(kp, BytesOfString("size"));
  EXPECT_EQ(res.proof.size(), 80u);
  EXPECT_EQ(res.output.size(), 64u);
}

TEST(EcVrfTest, VerifyRejectsAllZeroProof) {
  DeterministicRng rng(211);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfProof zero;
  EXPECT_FALSE(EcVrfVerify(kp.public_key, BytesOfString("x"), zero).has_value());
}

TEST(EcVrfTest, ProofsFromDifferentMessagesDiffer) {
  DeterministicRng rng(212);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfResult a = EcVrfProve(kp, BytesOfString("m1"));
  VrfResult b = EcVrfProve(kp, BytesOfString("m2"));
  EXPECT_NE(a.proof, b.proof);
}

// The double-scalar verify must agree with the legacy four-multiplication
// verify: same beta on valid proofs, same rejection on corrupted ones.
TEST(EcVrfTest, LegacyDecisionParity) {
  DeterministicRng rng(214);
  for (int i = 0; i < 3; ++i) {
    Ed25519KeyPair kp = KeyFromRng(&rng);
    auto alpha = BytesOfString("parity-" + std::to_string(i));
    VrfResult res = EcVrfProve(kp, alpha);
    auto fast = EcVrfVerify(kp.public_key, alpha, res.proof);
    auto legacy = EcVrfVerifyLegacy(kp.public_key, alpha, res.proof);
    ASSERT_TRUE(fast.has_value());
    ASSERT_TRUE(legacy.has_value());
    EXPECT_EQ(*fast, *legacy);
    EXPECT_EQ(*fast, res.output);
    // Corrupt each of the proof's three components in turn: Gamma (0..31),
    // c (32..47), s (48..79).
    for (size_t b : {size_t{0}, size_t{33}, size_t{50}, size_t{79}}) {
      VrfProof bad = res.proof;
      bad[b] ^= 1;
      EXPECT_EQ(EcVrfVerify(kp.public_key, alpha, bad).has_value(),
                EcVrfVerifyLegacy(kp.public_key, alpha, bad).has_value())
          << "corruption at byte " << b;
      EXPECT_FALSE(EcVrfVerify(kp.public_key, alpha, bad).has_value())
          << "corruption at byte " << b;
    }
    // Wrong alpha and wrong key must reject identically.
    auto wrong_alpha = BytesOfString("other");
    EXPECT_FALSE(EcVrfVerify(kp.public_key, wrong_alpha, res.proof).has_value());
    EXPECT_FALSE(EcVrfVerifyLegacy(kp.public_key, wrong_alpha, res.proof).has_value());
    Ed25519KeyPair other = KeyFromRng(&rng);
    EXPECT_EQ(EcVrfVerify(other.public_key, alpha, res.proof).has_value(),
              EcVrfVerifyLegacy(other.public_key, alpha, res.proof).has_value());
  }
}

TEST(SimVrfTest, MatchesKeyedHashContract) {
  // SimVrf output must depend only on (pk, alpha), so two key pairs with the
  // same public key (impossible in practice, but the contract matters for
  // caching) verify against each other's outputs.
  DeterministicRng rng(213);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  SimVrf vrf;
  VrfResult res = vrf.Prove(kp, BytesOfString("contract"));
  auto again = vrf.Verify(kp.public_key, BytesOfString("contract"), res.proof);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, res.output);
}

}  // namespace
}  // namespace algorand
