// StepTally tests: weighted counting, per-pk dedup, streaming leader
// semantics, and the common coin.
#include <gtest/gtest.h>

#include "src/core/vote_counter.h"

namespace algorand {
namespace {

PublicKey Pk(int i) {
  PublicKey pk;
  pk[0] = static_cast<uint8_t>(i);
  pk[1] = static_cast<uint8_t>(i >> 8);
  return pk;
}

VrfOutput Sorthash(int i) {
  VrfOutput h;
  h[0] = static_cast<uint8_t>(i);
  h[9] = static_cast<uint8_t>(i * 3);
  return h;
}

Hash256 Value(int i) {
  Hash256 v;
  v[0] = static_cast<uint8_t>(i);
  return v;
}

TEST(StepTallyTest, CountsWeights) {
  StepTally t;
  EXPECT_TRUE(t.AddVote(Pk(1), 3, Value(1), Sorthash(1)));
  EXPECT_TRUE(t.AddVote(Pk(2), 2, Value(1), Sorthash(2)));
  EXPECT_TRUE(t.AddVote(Pk(3), 1, Value(2), Sorthash(3)));
  EXPECT_EQ(t.CountFor(Value(1)), 5u);
  EXPECT_EQ(t.CountFor(Value(2)), 1u);
  EXPECT_EQ(t.CountFor(Value(9)), 0u);
  EXPECT_EQ(t.total_weight(), 6u);
  EXPECT_EQ(t.voter_count(), 3u);
}

TEST(StepTallyTest, RejectsDuplicateVoter) {
  StepTally t;
  EXPECT_TRUE(t.AddVote(Pk(1), 1, Value(1), Sorthash(1)));
  EXPECT_FALSE(t.AddVote(Pk(1), 1, Value(2), Sorthash(1)));  // Equivocation.
  EXPECT_EQ(t.CountFor(Value(2)), 0u);
}

TEST(StepTallyTest, RejectsZeroWeight) {
  StepTally t;
  EXPECT_FALSE(t.AddVote(Pk(1), 0, Value(1), Sorthash(1)));
  EXPECT_EQ(t.voter_count(), 0u);
}

TEST(StepTallyTest, LeaderRequiresStrictlyMoreThanThreshold) {
  StepTally t;
  t.AddVote(Pk(1), 5, Value(1), Sorthash(1));
  EXPECT_FALSE(t.Leader(5.0).has_value());  // 5 > 5 is false.
  t.AddVote(Pk(2), 1, Value(1), Sorthash(2));
  auto leader = t.Leader(5.0);
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(*leader, Value(1));
}

TEST(StepTallyTest, LeaderFollowsArrivalOrderOnAdversarialTies) {
  // Two values cross the threshold; the one that crossed first (in arrival
  // order) wins, matching the streaming CountVotes loop.
  StepTally t;
  t.AddVote(Pk(1), 3, Value(1), Sorthash(1));
  t.AddVote(Pk(2), 4, Value(2), Sorthash(2));  // Value 2 crosses at weight 4.
  t.AddVote(Pk(3), 2, Value(1), Sorthash(3));  // Value 1 crosses at weight 5.
  auto leader = t.Leader(3.5);
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(*leader, Value(2));
}

TEST(StepTallyTest, EmptyTallyHasNoLeaderAndCoinZero) {
  StepTally t;
  EXPECT_FALSE(t.Leader(0.0).has_value());
  EXPECT_EQ(t.CommonCoin(), 0);
}

TEST(StepTallyTest, CommonCoinIsDeterministic) {
  StepTally a, b;
  for (int i = 0; i < 10; ++i) {
    a.AddVote(Pk(i), 2, Value(1), Sorthash(i));
    b.AddVote(Pk(i), 2, Value(1), Sorthash(i));
  }
  EXPECT_EQ(a.CommonCoin(), b.CommonCoin());
}

TEST(StepTallyTest, CommonCoinIndependentOfArrivalOrder) {
  StepTally a, b;
  for (int i = 0; i < 8; ++i) {
    a.AddVote(Pk(i), 1, Value(1), Sorthash(i));
  }
  for (int i = 7; i >= 0; --i) {
    b.AddVote(Pk(i), 1, Value(1), Sorthash(i));
  }
  EXPECT_EQ(a.CommonCoin(), b.CommonCoin());
}

TEST(StepTallyTest, CommonCoinRoughlyUnbiased) {
  // Across many single-voter tallies with different sorthashes, the coin
  // should land on both sides a reasonable number of times.
  int zeros = 0;
  for (int i = 0; i < 200; ++i) {
    StepTally t;
    t.AddVote(Pk(i), 1, Value(1), Sorthash(i));
    zeros += (t.CommonCoin() == 0);
  }
  EXPECT_GT(zeros, 60);
  EXPECT_LT(zeros, 140);
}

TEST(StepTallyTest, EntriesPreserveArrivalOrder) {
  StepTally t;
  t.AddVote(Pk(3), 1, Value(1), Sorthash(3));
  t.AddVote(Pk(1), 1, Value(1), Sorthash(1));
  t.AddVote(Pk(2), 1, Value(1), Sorthash(2));
  ASSERT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.entries()[0].pk, Pk(3));
  EXPECT_EQ(t.entries()[1].pk, Pk(1));
  EXPECT_EQ(t.entries()[2].pk, Pk(2));
}

}  // namespace
}  // namespace algorand
