// Transaction-pipeline determinism: the conflict partitioner, the parallel
// block applier's bit-identity with the sequential path, batched signature
// verification, the sharded account table against a std::map reference, and
// the end-to-end exec_workers A/B at harness level (sim_determinism_test's
// pattern applied to block execution).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/core/sim_harness.h"
#include "src/core/tx_verifier.h"
#include "src/ledger/exec.h"
#include "src/ledger/ledger.h"
#include "src/ledger/mempool.h"

namespace algorand {
namespace {

const Ed25519Signer kSigner;

PublicKey KeyFromIndex(uint64_t i) {
  PublicKey pk{};
  for (size_t b = 0; b < 8; ++b) {
    pk.data()[b] = static_cast<uint8_t>(i >> (8 * b));
  }
  return pk;
}

// An unsigned payment — the applier checks applicability, not signatures.
Transaction RawPay(uint64_t from, uint64_t to, uint64_t amount, uint64_t nonce,
                   uint64_t fee = 0) {
  Transaction tx;
  tx.from = KeyFromIndex(from);
  tx.to = KeyFromIndex(to);
  tx.amount = amount;
  tx.nonce = nonce;
  tx.fee = fee;
  return tx;
}

TEST(PartitionTest, DisjointTransactionsGetOwnPartitions) {
  std::vector<Transaction> txns = {RawPay(1, 2, 5, 0), RawPay(3, 4, 5, 0), RawPay(5, 6, 5, 0)};
  auto parts = PartitionByAccount(txns);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(parts[1], (std::vector<uint32_t>{1}));
  EXPECT_EQ(parts[2], (std::vector<uint32_t>{2}));
}

TEST(PartitionTest, SharedAccountsMergeTransitively) {
  // tx0 and tx2 share account 2 through tx1 (1→2, 2→3, 3→4): one partition.
  // tx3 is disjoint.
  std::vector<Transaction> txns = {RawPay(1, 2, 5, 0), RawPay(2, 3, 5, 0), RawPay(3, 4, 5, 0),
                                   RawPay(8, 9, 5, 0)};
  auto parts = PartitionByAccount(txns);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(parts[1], (std::vector<uint32_t>{3}));
}

TEST(PartitionTest, SenderReuseStaysOrdered) {
  // Same sender twice: one partition, block order preserved.
  std::vector<Transaction> txns = {RawPay(1, 2, 5, 0), RawPay(1, 3, 5, 1)};
  auto parts = PartitionByAccount(txns);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (std::vector<uint32_t>{0, 1}));
}

TEST(AccountTableTest, MatchesMapReferenceThroughGrowth) {
  // Drive the sharded table and a std::map reference through the same
  // operation stream — enough inserts to force several shard growths — and
  // require identical observable state.
  AccountTable table;
  std::map<PublicKey, Account> ref;
  DeterministicRng rng(99);
  constexpr uint64_t kAccounts = 50'000;
  for (uint64_t i = 0; i < kAccounts; ++i) {
    uint64_t amount = 1 + rng.NextU64() % 1000;
    table.Credit(KeyFromIndex(i), amount);
    Account& a = ref[KeyFromIndex(i)];
    a.balance += amount;
  }
  for (int round = 0; round < 2000; ++round) {
    uint64_t from = rng.NextU64() % kAccounts;
    uint64_t to = rng.NextU64() % kAccounts;
    Transaction tx = RawPay(from, to, rng.NextU64() % 50, ref[KeyFromIndex(from)].next_nonce,
                            rng.NextU64() % 3);
    bool ok_ref = ref[KeyFromIndex(from)].balance >= tx.amount + tx.fee;
    ASSERT_EQ(table.ApplyTransaction(tx), ok_ref) << "round " << round;
    if (ok_ref) {
      ref[tx.from].balance -= tx.amount + tx.fee;
      ref[tx.from].next_nonce++;
      ref[tx.to].balance += tx.amount;
    }
  }
  ASSERT_EQ(table.account_count(), ref.size());
  for (const auto& [pk, acct] : ref) {
    EXPECT_EQ(table.BalanceOf(pk), acct.balance);
    EXPECT_EQ(table.NextNonceOf(pk), acct.next_nonce);
  }
  // SortedEntries must agree with the map's (already sorted) iteration.
  auto entries = table.SortedEntries();
  ASSERT_EQ(entries.size(), ref.size());
  size_t i = 0;
  for (const auto& [pk, acct] : ref) {
    EXPECT_EQ(entries[i].first, pk);
    EXPECT_EQ(entries[i].second, acct);
    ++i;
  }
}

TEST(AccountTableTest, FingerprintIsLayoutIndependent) {
  // Same logical state reached through different insertion orders (and thus
  // different probe layouts) must fingerprint identically.
  AccountTable fwd;
  AccountTable rev;
  fwd.Reserve(1000);  // Different initial capacities → different layouts.
  for (uint64_t i = 0; i < 500; ++i) {
    fwd.Credit(KeyFromIndex(i), i + 1);
  }
  for (uint64_t i = 500; i-- > 0;) {
    rev.Credit(KeyFromIndex(i), i + 1);
  }
  EXPECT_EQ(fwd.StateFingerprint(), rev.StateFingerprint());
  rev.Credit(KeyFromIndex(7), 1);
  EXPECT_NE(fwd.StateFingerprint(), rev.StateFingerprint());
}

// Builds a funded table plus a mixed block: long dependent chains, disjoint
// pairs, a self-transfer, and zero-amount transactions.
struct ApplierFixture {
  AccountTable table;
  std::vector<Transaction> block;

  ApplierFixture() {
    for (uint64_t i = 0; i < 400; ++i) {
      table.Credit(KeyFromIndex(i), 10'000);
    }
    DeterministicRng rng(4);
    // Chains: 0→1→2→...  within groups of 8 (same partition).
    for (uint64_t g = 0; g < 10; ++g) {
      for (uint64_t k = 0; k < 7; ++k) {
        block.push_back(RawPay(g * 8 + k, g * 8 + k + 1, 100, 0, 1));
      }
    }
    // Disjoint pairs (singleton partitions).
    for (uint64_t i = 100; i < 200; i += 2) {
      block.push_back(RawPay(i, i + 1, rng.NextU64() % 100, 0, rng.NextU64() % 4));
    }
    block.push_back(RawPay(300, 300, 50, 0, 2));  // Self-transfer: nets −fee.
    block.push_back(RawPay(301, 302, 0, 0, 0));   // Zero amount, zero fee.
  }
};

TEST(BlockApplierTest, ParallelApplyBitIdenticalToSequential) {
  ApplierFixture seq_fx;
  ApplierFixture par_fx;
  VerifyPool pool(4);
  BlockApplier sequential(nullptr);
  BlockApplier parallel(&pool);

  ExecStats seq_stats;
  ExecStats par_stats;
  ASSERT_TRUE(sequential.ApplyBlock(seq_fx.block, &seq_fx.table, &seq_stats));
  ASSERT_TRUE(parallel.ApplyBlock(par_fx.block, &par_fx.table, &par_stats));
  EXPECT_FALSE(seq_stats.parallel);
  EXPECT_TRUE(par_stats.parallel);
  EXPECT_EQ(seq_stats.partitions, par_stats.partitions);
  EXPECT_EQ(seq_fx.table.StateFingerprint(), par_fx.table.StateFingerprint());
  EXPECT_EQ(seq_fx.table.total_weight(), par_fx.table.total_weight());
}

TEST(BlockApplierTest, RejectionIsAtomicOnBothPaths) {
  ApplierFixture seq_fx;
  ApplierFixture par_fx;
  // Poison one transaction deep in the block: nonce that can never match.
  seq_fx.block[seq_fx.block.size() / 2].nonce = 999;
  par_fx.block[par_fx.block.size() / 2].nonce = 999;
  Hash256 seq_before = seq_fx.table.StateFingerprint();

  VerifyPool pool(4);
  BlockApplier sequential(nullptr);
  BlockApplier parallel(&pool);
  EXPECT_FALSE(sequential.ApplyBlock(seq_fx.block, &seq_fx.table));
  EXPECT_FALSE(parallel.ApplyBlock(par_fx.block, &par_fx.table));
  // Neither path left a partial application behind.
  EXPECT_EQ(seq_fx.table.StateFingerprint(), seq_before);
  EXPECT_EQ(par_fx.table.StateFingerprint(), seq_before);
}

TEST(BlockApplierTest, CheckBlockMatchesApplyVerdictWithoutMutation) {
  ApplierFixture fx;
  BlockApplier applier(nullptr);
  Hash256 before = fx.table.StateFingerprint();
  EXPECT_TRUE(applier.CheckBlock(fx.block, fx.table));
  EXPECT_EQ(fx.table.StateFingerprint(), before);
  fx.block.push_back(RawPay(390, 391, uint64_t{1} << 40, 0));  // Unaffordable.
  EXPECT_FALSE(applier.CheckBlock(fx.block, fx.table));
  EXPECT_EQ(fx.table.StateFingerprint(), before);
}

TEST(TxVerifierTest, BatchVerdictMatchesSequential) {
  GenesisBundle bundle = MakeTestGenesis(6, 1000, 11);
  std::vector<Transaction> txns;
  for (size_t i = 0; i < 64; ++i) {
    txns.push_back(MakeTransaction(bundle.keys[i % 6], bundle.keys[(i + 1) % 6].public_key, 1,
                                   i / 6, kSigner, 1));
  }
  VerificationCache cache;
  VerifyPool pool(4);
  TxSigVerifier threaded(&kSigner, &cache, &pool);
  TxSigVerifier inline_verifier(&kSigner, nullptr, nullptr);
  EXPECT_TRUE(threaded.VerifyBatch(txns));
  EXPECT_TRUE(inline_verifier.VerifyBatch(txns));

  // One corrupted signature anywhere fails the batch on both paths.
  txns[37].amount += 1;
  VerificationCache cache2;
  TxSigVerifier threaded2(&kSigner, &cache2, &pool);
  EXPECT_FALSE(threaded2.VerifyBatch(txns));
  EXPECT_FALSE(inline_verifier.VerifyBatch(txns));
}

TEST(TxVerifierTest, PrewarmMakesBatchACacheHit) {
  GenesisBundle bundle = MakeTestGenesis(4, 1000, 12);
  std::vector<Transaction> txns;
  for (size_t i = 0; i < 32; ++i) {
    txns.push_back(MakeTransaction(bundle.keys[i % 4], bundle.keys[(i + 1) % 4].public_key, 1,
                                   i / 4, kSigner));
  }
  VerificationCache cache;
  VerifyPool pool(2);
  TxSigVerifier verifier(&kSigner, &cache, &pool);
  verifier.Prewarm(txns);
  pool.Drain();
  for (const Transaction& tx : txns) {
    EXPECT_TRUE(cache.Contains(tx.Id()));
  }
  EXPECT_TRUE(verifier.VerifyBatch(txns));
}

// End-to-end A/B: a full consensus run with synthetic transaction load must
// commit identical chains and identical account state whether blocks are
// applied sequentially (exec_workers=0) or through the worker pool.
struct ExecRunOutcome {
  std::vector<Hash256> tips;
  std::vector<Hash256> fingerprints;
  uint64_t committed = 0;

  bool operator==(const ExecRunOutcome& o) const {
    return tips == o.tips && fingerprints == o.fingerprints && committed == o.committed;
  }
};

ExecRunOutcome RunWithExecWorkers(int exec_workers) {
  HarnessConfig cfg;
  cfg.n_nodes = 10;
  cfg.rng_seed = 5;
  cfg.use_sim_crypto = true;
  cfg.verify_workers = 0;  // Pin: this test isolates the exec pipeline.
  cfg.exec_workers = exec_workers;
  // Consensus stake must stay with the nodes: clients fund fees only, at a
  // negligible weight fraction, or committees go empty and rounds stall.
  cfg.stake_per_user = 100'000;
  cfg.tx_clients = 6;
  cfg.client_stake = 2'000;
  cfg.tx_load_per_round = 40;
  SimHarness h(cfg);
  h.Start();
  EXPECT_TRUE(h.RunRounds(3));
  EXPECT_TRUE(h.CheckSafety().ok);
  ExecRunOutcome out;
  out.committed = h.CommittedTxCount();
  for (size_t i = 0; i < h.node_count(); ++i) {
    out.tips.push_back(h.node(i).ledger().tip_hash());
    out.fingerprints.push_back(h.node(i).ledger().accounts().StateFingerprint());
  }
  return out;
}

TEST(TxPipelineTest, ExecWorkersAreBitIdenticalToSequential) {
  ExecRunOutcome seq = RunWithExecWorkers(0);
  ExecRunOutcome par = RunWithExecWorkers(2);
  EXPECT_GT(seq.committed, 0u);
  EXPECT_TRUE(seq == par);
}

}  // namespace
}  // namespace algorand
