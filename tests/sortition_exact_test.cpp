// Exact, deterministic tests of the binomial CDF inversion at the heart of
// sortition: craft VRF hashes landing at precise fractions and compare the
// selected sub-user count against a directly computed binomial CDF.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/sortition.h"

namespace algorand {
namespace {

// Builds a VrfOutput whose HashToFraction is (approximately, within 2^-64)
// the given fraction.
VrfOutput HashAtFraction(long double fraction) {
  VrfOutput h;
  auto hi = static_cast<uint64_t>(fraction * 0x1.0p64L);
  for (int i = 0; i < 8; ++i) {
    h[static_cast<size_t>(i)] = static_cast<uint8_t>(hi >> (56 - 8 * i));
  }
  return h;
}

// Direct binomial pmf, computed in log space: the naive product form
// overflows double at w=8000 (C(8000,284) ~ 1e535) while p^k underflows,
// yielding inf*0 = NaN. lgamma keeps every intermediate in range and is
// accurate to ~1e-13 relative, far below the 1e-9 probe offsets used below.
double Pmf(uint64_t k, uint64_t w, double p) {
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == w ? 1.0 : 0.0;
  const double log_choose = std::lgamma(static_cast<double>(w) + 1.0) -
                            std::lgamma(static_cast<double>(k) + 1.0) -
                            std::lgamma(static_cast<double>(w - k) + 1.0);
  return std::exp(log_choose + static_cast<double>(k) * std::log(p) +
                  static_cast<double>(w - k) * std::log1p(-p));
}

double Cdf(uint64_t k_inclusive, uint64_t w, double p) {
  double s = 0;
  for (uint64_t k = 0; k <= k_inclusive; ++k) {
    s += Pmf(k, w, p);
  }
  return s;
}

// P(X >= k). Near the upper tail this is the trustworthy form: Cdf() loses
// everything below ~1e-11 to pmf rounding once w is in the thousands, while
// summing the tail directly keeps the absolute error far below the terms.
double UpperTail(uint64_t k, uint64_t w, double p) {
  double s = 0;
  for (uint64_t i = k; i <= w; ++i) {
    s += Pmf(i, w, p);
  }
  return s;
}

struct Case {
  uint64_t w;
  double p;
};

class ExactSortitionTest : public ::testing::TestWithParam<Case> {};

TEST_P(ExactSortitionTest, MatchesDirectCdfInversion) {
  const auto [w, p] = GetParam();
  // Probe fractions straddling each CDF boundary.
  for (uint64_t j = 0; j <= w; ++j) {
    double boundary = Cdf(j, w, p);  // P(X <= j) = upper edge of interval j.
    if (boundary >= 1.0 - 2e-9) {
      break;  // Probes of +-1e-9 around the boundary would leave [0, 1).
    }
    if (Pmf(j, w, p) < 1e-8) {
      continue;  // Interval j is narrower than the probe offset: the below
                 // probe would land in an earlier interval (hit at w=8000,
                 // where far-tail intervals are ~1e-18 wide).
    }
    // Just below the boundary: should select exactly j.
    EXPECT_EQ(SelectSubUsers(HashAtFraction(boundary - 1e-9), w, p), j)
        << "w=" << w << " p=" << p << " j=" << j;
    // Just above: should select j+1 (or more only if pmf(j+1) < 2e-9).
    uint64_t above = SelectSubUsers(HashAtFraction(boundary + 1e-9), w, p);
    EXPECT_GE(above, j + 1) << "w=" << w << " p=" << p << " j=" << j;
    if (Pmf(j + 1, w, p) > 1e-7) {
      EXPECT_EQ(above, j + 1) << "w=" << w << " p=" << p << " j=" << j;
    }
  }
}

TEST_P(ExactSortitionTest, ZeroFractionSelectsZeroOrMode) {
  const auto [w, p] = GetParam();
  // Fraction 0 always lands in interval 0 when pmf(0) > 0.
  EXPECT_EQ(SelectSubUsers(HashAtFraction(0.0L), w, p), 0u);
}

TEST_P(ExactSortitionTest, NearOneFractionSelectsTail) {
  const auto [w, p] = GetParam();
  uint64_t j = SelectSubUsers(HashAtFraction(1.0L - 0x1.0p-40L), w, p);
  // The fraction lies in [CDF(j-1), CDF(j)), i.e. P(X >= j+1) < 2^-40 and
  // P(X >= j) >= 2^-40 — checked as upper-tail sums (the plain CDF is only
  // good to ~1e-11 at large w) with slack for pmf rounding.
  EXPECT_LT(UpperTail(j + 1, w, p), 1e-9);
  if (j > 0) {
    EXPECT_GT(UpperTail(j, w, p), 0x1.0p-41);
  }
  EXPECT_LE(j, w);
}

INSTANTIATE_TEST_SUITE_P(
    SmallCases, ExactSortitionTest,
    ::testing::Values(Case{1, 0.5}, Case{2, 0.25}, Case{5, 0.1}, Case{8, 0.3}, Case{10, 0.05},
                      Case{12, 0.5}, Case{6, 0.9}, Case{20, 0.02},
                      // The model checker's threshold-equivocation deployment:
                      // 8 nodes x 1000 stake under ScaledCommittees(0.02), so
                      // p = tau/W at W = 8000 for tau_step 40 and tau_final
                      // 200, probed per node (w = 1000) and for the whole
                      // stake (w = 8000).
                      Case{1000, 40.0 / 8000.0}, Case{1000, 200.0 / 8000.0},
                      Case{8000, 40.0 / 8000.0}, Case{8000, 200.0 / 8000.0}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "w" + std::to_string(info.param.w) + "_p" +
             std::to_string(static_cast<int>(info.param.p * 100));
    });

TEST(ExactSortitionEdgeTest, WeightOneIsBernoulli) {
  // With w=1, selection is a Bernoulli(p) draw on the hash fraction.
  const double p = 0.37;
  EXPECT_EQ(SelectSubUsers(HashAtFraction(0.62999L), 1, p), 0u);  // < 1-p
  EXPECT_EQ(SelectSubUsers(HashAtFraction(0.63001L), 1, p), 1u);  // > 1-p
}

TEST(ExactSortitionEdgeTest, HugeWeightTinyPIsPoissonLike) {
  // w=10^6, p=3e-6: mean 3. The CDF walk must stay stable; check a couple of
  // Poisson quantiles (binomial ~ Poisson here).
  const uint64_t w = 1000000;
  const double p = 3e-6;
  // P(X=0) = e^-3 ~ 0.0498.
  EXPECT_EQ(SelectSubUsers(HashAtFraction(0.0497L), w, p), 0u);
  EXPECT_EQ(SelectSubUsers(HashAtFraction(0.0499L), w, p), 1u);
  // Median of Poisson(3) is 3: fraction 0.5 should land at 2..4.
  uint64_t mid = SelectSubUsers(HashAtFraction(0.5L), w, p);
  EXPECT_GE(mid, 2u);
  EXPECT_LE(mid, 4u);
}

}  // namespace
}  // namespace algorand
