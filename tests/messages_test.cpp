// Wire-message tests: serialization round trips, signatures, dedup identity,
// and the paper's claims about message sizes.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/catchup.h"
#include "src/core/certificate.h"
#include "src/core/messages.h"
#include "src/core/wire_codec.h"

namespace algorand {
namespace {

const Ed25519Signer kSigner;

Ed25519KeyPair KeyFromRng(DeterministicRng* rng) {
  FixedBytes<32> seed;
  rng->FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

TEST(StepCodesTest, EncodingIsInjective) {
  EXPECT_NE(kStepReduction1, kStepReduction2);
  EXPECT_EQ(BinaryStepCode(1), kStepBinaryBase);
  EXPECT_EQ(BinaryStepCode(2), kStepBinaryBase + 1);
  EXPECT_LT(BinaryStepCode(150), kStepFinal);
}

TEST(VoteMessageTest, SerializeRoundTrip) {
  DeterministicRng rng(1);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfOutput sorthash;
  rng.FillBytes(sorthash.data(), sorthash.size());
  VrfProof proof;
  rng.FillBytes(proof.data(), proof.size());
  Hash256 prev, value;
  prev[0] = 1;
  value[0] = 2;

  VoteMessage v = MakeVote(kp, 7, kStepReduction1, sorthash, proof, prev, value, kSigner);
  auto bytes = v.Serialize();
  auto back = VoteMessage::Deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pk, kp.public_key);
  EXPECT_EQ(back->round, 7u);
  EXPECT_EQ(back->step, kStepReduction1);
  EXPECT_EQ(back->value, value);
  EXPECT_EQ(back->DedupId(), v.DedupId());
}

TEST(VoteMessageTest, SignatureCoversAllVotedFields) {
  DeterministicRng rng(2);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfOutput sorthash;
  VrfProof proof;
  Hash256 prev, value;
  VoteMessage v = MakeVote(kp, 1, 3, sorthash, proof, prev, value, kSigner);
  EXPECT_TRUE(kSigner.Verify(v.pk, v.SignedBody(), v.signature));
  VoteMessage tampered = v;
  tampered.value[0] ^= 1;
  EXPECT_FALSE(kSigner.Verify(tampered.pk, tampered.SignedBody(), tampered.signature));
  tampered = v;
  tampered.round += 1;
  EXPECT_FALSE(kSigner.Verify(tampered.pk, tampered.SignedBody(), tampered.signature));
  tampered = v;
  tampered.step += 1;
  EXPECT_FALSE(kSigner.Verify(tampered.pk, tampered.SignedBody(), tampered.signature));
  tampered = v;
  tampered.prev_hash[0] ^= 1;
  EXPECT_FALSE(kSigner.Verify(tampered.pk, tampered.SignedBody(), tampered.signature));
}

TEST(VoteMessageTest, WireSizeIsSmall) {
  // The paper gossips votes as small messages (~200-300 bytes plus framing).
  VoteMessage v;
  EXPECT_LE(v.WireSize(), 350u);
  EXPECT_GE(v.WireSize(), 200u);
}

TEST(VoteMessageTest, DeserializeRejectsTruncation) {
  VoteMessage v;
  auto bytes = v.Serialize();
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(VoteMessage::Deserialize(bytes).has_value());
}

TEST(VoteMessageTest, DistinctVotesDistinctDedupIds) {
  DeterministicRng rng(3);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfOutput sorthash;
  VrfProof proof;
  Hash256 prev, a, b;
  a[0] = 1;
  b[0] = 2;
  VoteMessage va = MakeVote(kp, 1, 3, sorthash, proof, prev, a, kSigner);
  VoteMessage vb = MakeVote(kp, 1, 3, sorthash, proof, prev, b, kSigner);
  EXPECT_NE(va.DedupId(), vb.DedupId());
}

TEST(PriorityMessageTest, SerializeRoundTripAndSize) {
  DeterministicRng rng(4);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfOutput sorthash;
  rng.FillBytes(sorthash.data(), sorthash.size());
  VrfProof proof;
  PriorityMessage m = MakePriorityMessage(kp, 9, sorthash, proof, 3, kSigner);
  auto back = PriorityMessage::Deserialize(m.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->round, 9u);
  EXPECT_EQ(back->sub_users, 3u);
  // "The first kind of message is small (about 200 Bytes)" (§6).
  EXPECT_LE(m.WireSize(), 300u);
}

TEST(PriorityMessageTest, SignatureCoversCredentials) {
  DeterministicRng rng(5);
  Ed25519KeyPair kp = KeyFromRng(&rng);
  VrfOutput sorthash;
  VrfProof proof;
  PriorityMessage m = MakePriorityMessage(kp, 9, sorthash, proof, 3, kSigner);
  EXPECT_TRUE(kSigner.Verify(m.pk, m.SignedBody(), m.signature));
  m.sub_users = 99;
  EXPECT_FALSE(kSigner.Verify(m.pk, m.SignedBody(), m.signature));
}

TEST(BlockMessageTest, DedupIdIsBlockHash) {
  BlockMessage m;
  m.block.round = 5;
  EXPECT_EQ(m.DedupId(), m.block.Hash());
  EXPECT_EQ(m.WireSize(), m.block.WireSize());
}

TEST(BlockRequestTest, DedupDistinguishesRequesters) {
  BlockRequestMessage a, b;
  a.round = b.round = 3;
  a.requester = 1;
  b.requester = 2;
  EXPECT_NE(a.DedupId(), b.DedupId());
}

TEST(CertificateTest, WireSizeSumsVotes) {
  Certificate cert;
  EXPECT_EQ(cert.WireSize(), 8u + 4 + 32);
  cert.votes.emplace_back();
  uint64_t one = cert.WireSize();
  cert.votes.emplace_back();
  EXPECT_EQ(cert.WireSize(), 2 * (one - 44) + 44);
}

// --- Wire-size constants vs actual serialization ---
//
// Fixed-layout messages report kWireSize without serializing; these asserts
// keep the constants honest if a field is ever added.

TEST(WireSizeConstantsTest, MatchSerializedSizes) {
  VoteMessage v;
  EXPECT_EQ(VoteMessage::kWireSize, v.Serialize().size());
  EXPECT_EQ(v.WireSize(), v.Serialize().size());

  PriorityMessage p;
  EXPECT_EQ(PriorityMessage::kWireSize, p.Serialize().size());
  EXPECT_EQ(p.WireSize(), p.Serialize().size());

  BlockRequestMessage r;
  EXPECT_EQ(BlockRequestMessage::kWireSize, r.Serialize().size());
  EXPECT_EQ(r.WireSize(), r.Serialize().size());

  CatchupRequestMessage c;
  EXPECT_EQ(CatchupRequestMessage::kWireSize, c.Serialize().size());
  EXPECT_EQ(c.WireSize(), c.Serialize().size());
}

// --- Memoized message identity ---

TEST(MessageMemoTest, DedupIdIsStableAndCopiesRecompute) {
  DeterministicRng rng(23);
  VoteMessage v;
  v.round = 5;
  v.step = 2;
  rng.FillBytes(v.pk.data(), v.pk.size());
  Hash256 id = v.DedupId();
  EXPECT_EQ(v.DedupId(), id);  // Memoized value is stable.

  // A copy starts with a cold cache: mutating it before the first DedupId
  // call must yield the new identity, not the source's memo.
  VoteMessage changed = v;
  changed.round = 6;
  EXPECT_NE(changed.DedupId(), id);

  VoteMessage same = v;
  EXPECT_EQ(same.DedupId(), id);

  // Same contract through assignment onto an already-warm message.
  VoteMessage target;
  target.DedupId();
  target = changed;
  target.round = 7;
  EXPECT_NE(target.DedupId(), changed.DedupId());
}

TEST(MessageMemoTest, EncodedWireIsMemoizedPerMessage) {
  VoteMessage v;
  v.round = 3;
  const std::vector<uint8_t>& a = EncodeMessageCached(v);
  const std::vector<uint8_t>& b = EncodeMessageCached(v);
  EXPECT_EQ(&a, &b);  // Second call returns the same buffer, no re-encode.
  EXPECT_EQ(a, EncodeMessage(v));
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace algorand
