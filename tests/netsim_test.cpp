// Discrete-event simulator, latency/bandwidth models, gossip overlay, and
// adversary tests.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"
#include "src/netsim/adversary.h"
#include "src/netsim/gossip.h"
#include "src/netsim/latency.h"
#include "src/netsim/network.h"
#include "src/netsim/simulation.h"

namespace algorand {
namespace {

// A trivial message carrying a numbered payload of a declared size.
class TestMessage : public SimMessage {
 public:
  TestMessage(uint64_t id, uint64_t size) : id_(id), size_(size) {}
  const char* TypeName() const override { return "test"; }
  uint64_t id() const { return id_; }

 protected:
  uint64_t ComputeWireSize() const override { return size_; }
  Hash256 ComputeDedupId() const override {
    Writer w;
    w.U64(id_);
    return Sha256::Hash(w.buffer());
  }

 private:
  uint64_t id_;
  uint64_t size_;
};

MessagePtr Msg(uint64_t id, uint64_t size = 100) {
  return std::make_shared<TestMessage>(id, size);
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Seconds(3), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Seconds(1), [&, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Runs a randomized schedule — duplicate timestamps, nested re-scheduling,
// a mid-run RunUntil boundary — and records the execution order.
std::vector<int> RunMixedScheduleOn(Simulation::QueueKind kind) {
  Simulation sim(kind);
  std::vector<int> order;
  DeterministicRng rng(17);
  for (int i = 0; i < 300; ++i) {
    SimTime t = static_cast<SimTime>(rng.NextU64() % static_cast<uint64_t>(Seconds(5)));
    sim.Schedule(t, [&sim, &order, &rng, i] {
      order.push_back(i);
      if (i % 3 == 0) {
        // Children land on coarse times so many collide, exercising seq ties.
        SimTime d = static_cast<SimTime>(rng.NextU64() % 4) * Millis(250);
        sim.Schedule(d, [&order, i] { order.push_back(1000 + i); });
      }
    });
  }
  sim.RunUntil(Seconds(2));
  sim.Run();
  return order;
}

TEST(SimulationTest, HeapAndMapQueuesExecuteIdentically) {
  // The 4-ary heap must preserve the exact (time, insertion) total order the
  // reference std::map queue defines — this is what keeps replays
  // bit-identical across the two implementations.
  std::vector<int> heap_order = RunMixedScheduleOn(Simulation::QueueKind::kHeap);
  std::vector<int> map_order = RunMixedScheduleOn(Simulation::QueueKind::kMap);
  ASSERT_EQ(heap_order.size(), map_order.size());
  EXPECT_EQ(heap_order, map_order);
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Schedule(Seconds(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Seconds(2));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(5), [&] { ++fired; });
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(3));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, PastSchedulingClampsToNow) {
  Simulation sim;
  sim.Schedule(Seconds(2), [] {});
  sim.Run();
  bool ran = false;
  sim.ScheduleAt(Seconds(1), [&] { ran = true; });  // In the past.
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), Seconds(2));
}

TEST(UniformLatencyTest, WithinBounds) {
  UniformLatencyModel model(Millis(50), Millis(10), 1);
  for (int i = 0; i < 100; ++i) {
    SimTime s = model.Sample(0, 1);
    EXPECT_GE(s, Millis(50));
    EXPECT_LT(s, Millis(60));
  }
}

TEST(CityLatencyTest, IntraCityIsFast) {
  CityLatencyModel model(40, 7);
  // Nodes 0 and 20 are both in city 0 (round-robin assignment).
  EXPECT_EQ(model.city_of(0), model.city_of(20));
  EXPECT_LT(model.BaseLatency(0, 0), Millis(2));
}

TEST(CityLatencyTest, CrossOceanIsSlow) {
  CityLatencyModel model(40, 7);
  // New York (0) <-> Tokyo (14): tens of milliseconds one-way.
  SimTime base = model.BaseLatency(0, 14);
  EXPECT_GT(base, Millis(60));
  EXPECT_LT(base, Millis(200));
}

TEST(CityLatencyTest, SymmetricBase) {
  CityLatencyModel model(40, 7);
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      EXPECT_EQ(model.BaseLatency(a, b), model.BaseLatency(b, a));
    }
  }
}

TEST(CityLatencyTest, JitterIsNonNegative) {
  CityLatencyModel model(40, 7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(model.Sample(0, 14), model.BaseLatency(0, 14));
  }
}

struct NetFixture {
  NetFixture(size_t n, NetworkConfig cfg = {})
      : latency(Millis(10), 0, 1), network(&sim, &latency, cfg, n) {
    network.set_delivery_handler([this](NodeId to, NodeId from, const MessagePtr& msg) {
      deliveries.push_back({to, from, std::static_pointer_cast<const TestMessage>(msg)->id(),
                            sim.now()});
    });
  }
  struct Delivery {
    NodeId to;
    NodeId from;
    uint64_t id;
    SimTime at;
  };
  Simulation sim;
  UniformLatencyModel latency;
  Network network;
  std::vector<Delivery> deliveries;
};

TEST(NetworkTest, DeliversWithLatency) {
  NetFixture f(2);
  f.network.Send(0, 1, Msg(7, 1000));
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].to, 1u);
  EXPECT_EQ(f.deliveries[0].id, 7u);
  // 1000 bytes at 2.5 MB/s = 0.4 ms tx + 10 ms latency + 50 us overhead.
  EXPECT_GT(f.deliveries[0].at, Millis(10));
  EXPECT_LT(f.deliveries[0].at, Millis(12));
}

TEST(NetworkTest, UplinkSerializesConcurrentSends) {
  // Two 1 MB messages sent back-to-back: the second waits for the first's
  // transmission to finish, so it arrives ~0.42 s later.
  NetFixture f(3);
  f.network.Send(0, 1, Msg(1, 1 << 20));
  f.network.Send(0, 2, Msg(2, 1 << 20));
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  SimTime gap = f.deliveries[1].at - f.deliveries[0].at;
  SimTime expected_tx = static_cast<SimTime>((1 << 20) / (20e6 / 8) * kSecond);
  EXPECT_NEAR(static_cast<double>(gap), static_cast<double>(expected_tx),
              static_cast<double>(Millis(1)));
}

TEST(NetworkTest, TracksTraffic) {
  NetFixture f(2);
  f.network.Send(0, 1, Msg(1, 500));
  f.network.Send(0, 1, Msg(2, 300));
  f.sim.Run();
  EXPECT_EQ(f.network.traffic(0).bytes_sent, 800u);
  EXPECT_EQ(f.network.traffic(0).messages_sent, 2u);
  EXPECT_EQ(f.network.traffic(1).bytes_received, 800u);
  EXPECT_EQ(f.network.traffic(1).messages_received, 2u);
  EXPECT_EQ(f.network.total_bytes_sent(), 800u);
  EXPECT_EQ(f.network.message_counts_by_type().at("test"), 2u);
}

TEST(NetworkTest, PerNodeUplinkOverride) {
  NetFixture f(2);
  f.network.set_uplink(0, 1000.0);  // 1 KB/s: 1000 bytes takes a second.
  f.network.Send(0, 1, Msg(1, 1000));
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_GT(f.deliveries[0].at, Seconds(1));
}

TEST(AdversaryTest, PartitionBlocksCrossGroupTraffic) {
  NetFixture f(4);
  PartitionAdversary adversary({0, 1}, 0, Seconds(100));
  f.network.set_adversary(&adversary);
  f.network.Send(0, 1, Msg(1));  // Same group: delivered.
  f.network.Send(0, 2, Msg(2));  // Cross group: dropped.
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].id, 1u);
}

TEST(AdversaryTest, PartitionHealsAfterEnd) {
  NetFixture f(4);
  PartitionAdversary adversary({0, 1}, 0, Seconds(5));
  f.network.set_adversary(&adversary);
  f.sim.Schedule(Seconds(10), [&] { f.network.Send(0, 2, Msg(3)); });
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].id, 3u);
}

TEST(AdversaryTest, TargetedDosSilencesVictim) {
  NetFixture f(3);
  TargetedDosAdversary adversary({1}, 0, Seconds(100));
  f.network.set_adversary(&adversary);
  f.network.Send(0, 1, Msg(1));  // To victim: dropped.
  f.network.Send(1, 2, Msg(2));  // From victim: dropped.
  f.network.Send(0, 2, Msg(3));  // Unrelated: delivered.
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].id, 3u);
}

TEST(AdversaryTest, LossyDropsApproximatelyAtRate) {
  NetFixture f(2);
  LossyAdversary adversary(0.3, 99);
  f.network.set_adversary(&adversary);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    f.network.Send(0, 1, Msg(static_cast<uint64_t>(i), 10));
  }
  f.sim.Run();
  double rate = 1.0 - static_cast<double>(f.deliveries.size()) / n;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(AdversaryTest, DelayedDeliveryArrivesLater) {
  NetFixture f(2);
  class DelayAll : public NetworkAdversary {
   public:
    AdversaryAction OnTransmit(NodeId, NodeId, const MessagePtr&, SimTime) override {
      return AdversaryAction::Delay(Seconds(30));
    }
  } adversary;
  f.network.set_adversary(&adversary);
  f.network.Send(0, 1, Msg(1));
  f.sim.Run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_GT(f.deliveries[0].at, Seconds(30));
}

TEST(TopologyTest, DegreeAveragesTwiceOutDegree) {
  DeterministicRng rng(5);
  GossipTopology topo(200, 4, &rng);
  EXPECT_NEAR(topo.average_degree(), 8.0, 1.0);
}

TEST(TopologyTest, NeighborsAreSymmetric) {
  DeterministicRng rng(6);
  GossipTopology topo(50, 4, &rng);
  for (NodeId n = 0; n < 50; ++n) {
    for (NodeId peer : topo.neighbors(n)) {
      const auto& back = topo.neighbors(peer);
      EXPECT_NE(std::find(back.begin(), back.end(), n), back.end());
    }
  }
}

TEST(TopologyTest, NoSelfLoops) {
  DeterministicRng rng(7);
  GossipTopology topo(50, 4, &rng);
  for (NodeId n = 0; n < 50; ++n) {
    const auto& nbrs = topo.neighbors(n);
    EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), n), nbrs.end());
  }
}

TEST(TopologyTest, GiantComponentCoversAlmostEveryone) {
  DeterministicRng rng(8);
  GossipTopology topo(500, 4, &rng);
  EXPECT_GE(topo.LargestComponentLowerBound(), 495u);
}

TEST(TopologyTest, TinyNetworks) {
  DeterministicRng rng(9);
  GossipTopology one(1, 4, &rng);
  EXPECT_TRUE(one.neighbors(0).empty());
  GossipTopology two(2, 4, &rng);
  EXPECT_EQ(two.neighbors(0).size(), 1u);
}

struct GossipFixture {
  explicit GossipFixture(size_t n, uint64_t seed = 11)
      : rng(seed), latency(Millis(10), Millis(2), seed), network(&sim, &latency, {}, n),
        topology(n, 4, &rng) {
    agents.reserve(n);
    received.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<GossipAgent>(i, &network, &topology));
      // One shared registry: same-named counters aggregate across agents.
      agents.back()->AttachMetrics(&metrics);
      agents.back()->set_handler([this, i](const MessagePtr& msg) {
        received[i].insert(std::static_pointer_cast<const TestMessage>(msg)->id());
      });
    }
    network.set_delivery_handler([this](NodeId to, NodeId from, const MessagePtr& msg) {
      agents[to]->OnReceive(from, msg);
    });
  }
  DeterministicRng rng;
  Simulation sim;
  UniformLatencyModel latency;
  Network network;
  GossipTopology topology;
  MetricsRegistry metrics;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<std::set<uint64_t>> received;
};

TEST(GossipTest, SeenWindowPrunesAfterTwoGenerations) {
  GossipFixture f(20);
  f.agents[0]->Gossip(Msg(1));
  f.sim.Run();
  ASSERT_GT(f.agents[5]->seen_size(), 0u);

  // Window w+1: ids from window w survive one more generation.
  for (auto& agent : f.agents) {
    agent->AdvanceSeenWindow(1);
  }
  EXPECT_GT(f.agents[5]->seen_size(), 0u);

  // Window w+2: the old generation is forgotten.
  for (auto& agent : f.agents) {
    agent->AdvanceSeenWindow(2);
  }
  EXPECT_EQ(f.agents[5]->seen_size(), 0u);
  EXPECT_EQ(f.agents[5]->seen_window(), 2u);

  // The registry gauge tracks the same pruning (shared registry: the last
  // writer's size, which is 0 for every agent now).
  MetricsSnapshot snap = f.metrics.Snapshot();
  auto it = snap.gauges.find("gossip.seen_size");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 0);
}

TEST(GossipTest, SeenWindowJumpClearsBothGenerations) {
  GossipFixture f(10);
  f.agents[0]->Gossip(Msg(2));
  f.sim.Run();
  ASSERT_GT(f.agents[3]->seen_size(), 0u);
  // A multi-window jump (catch-up) clears everything at once.
  f.agents[3]->AdvanceSeenWindow(7);
  EXPECT_EQ(f.agents[3]->seen_size(), 0u);
  // Moving backwards is a no-op.
  f.agents[3]->AdvanceSeenWindow(3);
  EXPECT_EQ(f.agents[3]->seen_window(), 7u);
}

TEST(GossipTest, PrunedIdsAreFirstSeenAgain) {
  // After pruning, a replayed duplicate counts as first-seen; in the real
  // node ValidateForRelay rejects the stale replay, which is what makes the
  // two-generation window safe. kDeliverOnly keeps the check deterministic
  // (no relay fan-out).
  GossipFixture f(10);
  for (auto& agent : f.agents) {
    agent->set_validator([](const MessagePtr&) { return GossipVerdict::kDeliverOnly; });
  }
  f.agents[1]->SendTo(2, Msg(3));
  f.sim.Run();
  uint64_t dupes_before = f.agents[0]->duplicates_dropped();
  // Same id again without pruning: dropped as duplicate.
  f.agents[1]->SendTo(2, Msg(3));
  f.sim.Run();
  EXPECT_EQ(f.agents[0]->duplicates_dropped(), dupes_before + 1);
  // Prune both generations, then replay: treated as new, not a duplicate.
  for (auto& agent : f.agents) {
    agent->AdvanceSeenWindow(2);
  }
  f.agents[1]->SendTo(2, Msg(3));
  f.sim.Run();
  EXPECT_EQ(f.agents[0]->duplicates_dropped(), dupes_before + 1);
  EXPECT_GT(f.agents[2]->seen_size(), 0u);  // Re-marked seen on re-delivery.
}

TEST(GossipTest, BroadcastReachesEveryone) {
  GossipFixture f(100);
  f.agents[0]->Gossip(Msg(42));
  f.sim.Run();
  size_t got = 0;
  for (const auto& r : f.received) {
    got += r.count(42);
  }
  EXPECT_GE(got, 99u);  // Tiny disconnected components are tolerated.
}

TEST(GossipTest, DuplicatesAreDropped) {
  GossipFixture f(50);
  f.agents[0]->Gossip(Msg(1));
  f.sim.Run();
  // The fixture attaches every agent to one shared registry, so any agent's
  // accessor reads the network-wide total — one observability path.
  uint64_t dupes = f.agents[0]->duplicates_dropped();
  // With ~8 average degree, every node receives the message several times.
  EXPECT_GT(dupes, 50u);
  MetricsSnapshot snap = f.metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("gossip.dup_dropped"), dupes);
  // But each node delivered it exactly once.
  for (const auto& r : f.received) {
    EXPECT_LE(r.size(), 1u);
  }
}

TEST(GossipTest, RegistryCountersBalance) {
  GossipFixture f(50);
  f.agents[0]->Gossip(Msg(7));
  f.agents[1]->Gossip(Msg(8));
  f.sim.Run();
  MetricsSnapshot snap = f.metrics.Snapshot();
  uint64_t in = snap.CounterSumByPrefix("gossip.msgs_in.");
  uint64_t out = snap.CounterSumByPrefix("gossip.msgs_out.");
  // The simulated network loses nothing: every sent copy arrives.
  EXPECT_EQ(in, out);
  EXPECT_GT(in, 0u);
  // Every arrival is classified exactly once: new (delivered) or duplicate.
  EXPECT_EQ(in, snap.CounterValue("gossip.delivered") + snap.CounterValue("gossip.dup_dropped") +
                    snap.CounterValue("gossip.rejected"));
  // Bytes flow matches message flow.
  EXPECT_EQ(snap.CounterValue("gossip.bytes_in"), snap.CounterValue("gossip.bytes_out"));
  EXPECT_GT(snap.CounterValue("gossip.bytes_in"), 0u);
}

TEST(GossipTest, RejectedMessagesAreNotRelayedOrDelivered) {
  GossipFixture f(30);
  for (auto& agent : f.agents) {
    agent->set_validator([](const MessagePtr&) { return GossipVerdict::kReject; });
  }
  // Originator bypasses its own validator (it built the message).
  f.agents[0]->Gossip(Msg(5));
  f.sim.Run();
  size_t got = 0;
  for (NodeId i = 1; i < 30; ++i) {
    got += f.received[i].size();
  }
  EXPECT_EQ(got, 0u);
  // Only the originator's direct neighbours saw it at all. The registry is
  // shared, so one agent's accessor is the network-wide rejection count.
  EXPECT_EQ(f.agents[0]->rejected(), f.topology.neighbors(0).size());
}

TEST(GossipTest, DeliverOnlyStopsPropagation) {
  GossipFixture f(100);
  for (auto& agent : f.agents) {
    agent->set_validator([](const MessagePtr&) { return GossipVerdict::kDeliverOnly; });
  }
  f.agents[0]->Gossip(Msg(9));
  f.sim.Run();
  // Only direct neighbours of the originator receive it.
  size_t got = 0;
  for (NodeId i = 1; i < 100; ++i) {
    got += f.received[i].size();
  }
  EXPECT_EQ(got, f.topology.neighbors(0).size());
}

TEST(GossipTest, PropagationTimeGrowsLogarithmically) {
  // Gossip dissemination time should grow slowly with network size (§8.4).
  auto measure = [](size_t n) {
    GossipFixture f(n, 13);
    SimTime done = 0;
    size_t target = n - n / 50;  // 98% coverage.
    f.agents[0]->Gossip(Msg(1, 200));
    // Track the time the target-th node first receives.
    size_t got = 0;
    for (NodeId i = 0; i < n; ++i) {
      f.agents[i]->set_handler([&, i](const MessagePtr&) {
        f.received[i].insert(1);
        if (++got == target) {
          done = f.sim.now();
        }
      });
    }
    f.sim.Run();
    return done;
  };
  SimTime t100 = measure(100);
  SimTime t400 = measure(400);
  EXPECT_GT(t100, 0);
  EXPECT_GT(t400, 0);
  // 4x nodes should cost far less than 4x time (log diameter).
  EXPECT_LT(t400, t100 * 3);
}

TEST(GossipTest, EquivocationViaDirectSends) {
  // A malicious origin can send different payloads to different neighbours
  // using SendTo; honest relays then spread both versions.
  GossipFixture f(60);
  const auto& nbrs = f.topology.neighbors(0);
  ASSERT_GE(nbrs.size(), 2u);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    f.agents[0]->SendTo(nbrs[i], Msg(i % 2 == 0 ? 100 : 200));
  }
  f.sim.Run();
  size_t saw_100 = 0, saw_200 = 0;
  for (const auto& r : f.received) {
    saw_100 += r.count(100);
    saw_200 += r.count(200);
  }
  EXPECT_GT(saw_100, 10u);
  EXPECT_GT(saw_200, 10u);
}

}  // namespace
}  // namespace algorand
