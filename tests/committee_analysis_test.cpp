// Tests for the Figure 3 / Appendix B committee-size analysis.
#include <gtest/gtest.h>

#include "src/core/committee_analysis.h"
#include "src/core/params.h"

namespace algorand {
namespace {

TEST(CommitteeAnalysisTest, ViolationDecreasesWithTau) {
  double v500 = BestThreshold(0.80, 500).violation;
  double v1000 = BestThreshold(0.80, 1000).violation;
  double v2000 = BestThreshold(0.80, 2000).violation;
  EXPECT_GT(v500, v1000);
  EXPECT_GT(v1000, v2000);
}

TEST(CommitteeAnalysisTest, ViolationDecreasesWithHonesty) {
  double v76 = BestThreshold(0.76, 1500).violation;
  double v80 = BestThreshold(0.80, 1500).violation;
  double v90 = BestThreshold(0.90, 1500).violation;
  EXPECT_GT(v76, v80);
  EXPECT_GT(v80, v90);
}

TEST(CommitteeAnalysisTest, PaperParametersMeetTarget) {
  // Figure 3's star: h = 80%, tau_step = 2000, T = 0.685 keeps violation
  // below 5e-9.
  double v = CommitteeViolationProbability(0.80, 2000, 0.685);
  EXPECT_LT(v, 5e-9);
}

TEST(CommitteeAnalysisTest, SmallCommitteeFailsTarget) {
  EXPECT_GT(CommitteeViolationProbability(0.80, 200, 0.685), 5e-9);
}

TEST(CommitteeAnalysisTest, RequiredSizeAt80PercentIsNearPaperValue) {
  // The paper reports tau_step = 2000 suffices at h = 80%; the required size
  // should land at or below 2000 (the paper's choice has margin).
  double tau = RequiredCommitteeSize(0.80, 5e-9);
  EXPECT_GT(tau, 500);
  EXPECT_LE(tau, 2100);
}

TEST(CommitteeAnalysisTest, RequiredSizeGrowsAsHonestyApproachesTwoThirds) {
  double tau_76 = RequiredCommitteeSize(0.76, 5e-9);
  double tau_80 = RequiredCommitteeSize(0.80, 5e-9);
  double tau_86 = RequiredCommitteeSize(0.86, 5e-9);
  EXPECT_GT(tau_76, tau_80);
  EXPECT_GT(tau_80, tau_86);
  // Figure 3 shape: committee size grows quickly below ~78%.
  EXPECT_GT(tau_76 / tau_86, 2.0);
}

TEST(CommitteeAnalysisTest, BestThresholdAboveTwoThirds) {
  ThresholdChoice c = BestThreshold(0.80, 2000);
  EXPECT_GT(c.threshold, 2.0 / 3.0);
  EXPECT_LT(c.threshold, 1.0);
}

TEST(CommitteeAnalysisTest, ImpossibleTargetReturnsZero) {
  // With h barely above 2/3 and a tiny tau limit, no committee works.
  EXPECT_EQ(RequiredCommitteeSize(0.68, 5e-9, /*tau_limit=*/100), 0);
}

TEST(CommitteeAnalysisTest, CertificateForgeryBoundMatchesPaper) {
  // §8.3: "For tau_step > 1000, the probability of this attack is less than
  // 2^-166 at every step." At the paper's parameters the bound is far below.
  double log2_at_1000 = Log2CertificateForgeryProbability(0.80, 1000, 0.685);
  EXPECT_LT(log2_at_1000, -166);
  double log2_at_2000 = Log2CertificateForgeryProbability(0.80, 2000, 0.685);
  EXPECT_LT(log2_at_2000, log2_at_1000);  // Bigger committees are safer.
  // Tiny committees offer no such protection.
  EXPECT_GT(Log2CertificateForgeryProbability(0.80, 50, 0.685), -60);
}

TEST(ParamsTest, PaperDefaultsMatchFigure4) {
  ProtocolParams p = ProtocolParams::Paper();
  EXPECT_DOUBLE_EQ(p.honest_fraction, 0.80);
  EXPECT_EQ(p.seed_refresh_interval, 1000u);
  EXPECT_DOUBLE_EQ(p.tau_proposer, 26);
  EXPECT_DOUBLE_EQ(p.tau_step, 2000);
  EXPECT_DOUBLE_EQ(p.t_step, 0.685);
  EXPECT_DOUBLE_EQ(p.tau_final, 10000);
  EXPECT_DOUBLE_EQ(p.t_final, 0.74);
  EXPECT_EQ(p.max_steps, 150);
  EXPECT_EQ(p.lambda_priority, Seconds(5));
  EXPECT_EQ(p.lambda_block, Minutes(1));
  EXPECT_EQ(p.lambda_step, Seconds(20));
  EXPECT_EQ(p.lambda_stepvar, Seconds(5));
}

TEST(ParamsTest, ScaledCommitteesShrinkOnlyTaus) {
  ProtocolParams p = ProtocolParams::ScaledCommittees(0.05);
  EXPECT_DOUBLE_EQ(p.tau_step, 100);
  EXPECT_DOUBLE_EQ(p.tau_final, 500);
  EXPECT_DOUBLE_EQ(p.t_step, 0.685);       // unchanged
  EXPECT_EQ(p.lambda_step, Seconds(20));   // unchanged
  EXPECT_GE(p.tau_proposer, 5.0);          // floored
}

TEST(ParamsTest, ThresholdHelpers) {
  ProtocolParams p = ProtocolParams::Paper();
  EXPECT_DOUBLE_EQ(p.StepThreshold(), 0.685 * 2000);
  EXPECT_DOUBLE_EQ(p.FinalThreshold(), 0.74 * 10000);
}

}  // namespace
}  // namespace algorand
