// End-to-end integration tests: whole Algorand deployments inside the
// discrete-event simulator — happy path, payments, adversaries, partitions.
#include <gtest/gtest.h>

#include "src/core/sim_harness.h"

namespace algorand {
namespace {

HarnessConfig SmallConfig(uint64_t seed = 1) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);  // tau_step 40, tau_final 200.
  cfg.params.block_size_bytes = 64 * 1024;              // Keep gossip cheap in tests.
  cfg.latency = HarnessConfig::Latency::kUniform;
  return cfg;
}

TEST(ConsensusIntegrationTest, ReachesFinalConsensusEveryRound) {
  SimHarness h(SmallConfig());
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(2)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  for (size_t i = 0; i < h.node_count(); ++i) {
    const auto& recs = h.node(i).round_records();
    ASSERT_GE(recs.size(), 3u);
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_TRUE(recs[r].final) << "node " << i << " round " << r + 1;
      EXPECT_FALSE(recs[r].empty) << "node " << i << " round " << r + 1;
      EXPECT_FALSE(recs[r].hung);
    }
  }
}

TEST(ConsensusIntegrationTest, RoundLatencyIsUnderAMinute) {
  SimHarness h(SmallConfig(2));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  for (uint64_t r = 1; r <= 2; ++r) {
    auto latencies = h.RoundLatencies(r);
    ASSERT_FALSE(latencies.empty());
    for (double s : latencies) {
      EXPECT_LT(s, 60.0);
      EXPECT_GT(s, 5.0);  // The priority window alone is 10 s.
    }
  }
}

TEST(ConsensusIntegrationTest, PaymentsConfirmOnAllNodes) {
  SimHarness h(SmallConfig(3));
  Transaction tx = h.SubmitPayment(2, 3, 250, 0);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  for (size_t i = 0; i < h.node_count(); ++i) {
    const Ledger& ledger = h.node(i).ledger();
    EXPECT_TRUE(ledger.IsConfirmed(tx.Id())) << "node " << i;
    EXPECT_EQ(ledger.accounts().BalanceOf(h.genesis().keys[2].public_key), 750u);
    EXPECT_EQ(ledger.accounts().BalanceOf(h.genesis().keys[3].public_key), 1250u);
  }
}

TEST(ConsensusIntegrationTest, DoubleSpendOnlyOneConfirms) {
  SimHarness h(SmallConfig(4));
  // Node 2 signs two conflicting payments with the same nonce.
  Transaction tx_a = h.SubmitPayment(2, 3, 900, 0);
  Transaction tx_b = h.SubmitPayment(2, 4, 900, 0);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  for (size_t i = 0; i < h.node_count(); ++i) {
    const Ledger& ledger = h.node(i).ledger();
    bool a = ledger.IsConfirmed(tx_a.Id());
    bool b = ledger.IsConfirmed(tx_b.Id());
    EXPECT_NE(a, b) << "node " << i << ": exactly one of the double-spends confirms";
    // Every node agrees on which one.
    EXPECT_EQ(a, h.node(0).ledger().IsConfirmed(tx_a.Id()));
  }
}

TEST(ConsensusIntegrationTest, CertificatesValidateForOutsiders) {
  SimHarness h(SmallConfig(5));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  // Validate node 0's certificate for round 1 the way a catching-up client
  // would: from the (publicly known) context of round 1.
  const Node& node = h.node(0);
  ASSERT_TRUE(node.certificates().count(1));
  const Certificate& cert = node.certificates().at(1);
  EXPECT_EQ(cert.block_hash, node.ledger().BlockAtRound(1).Hash());

  RoundContext ctx;
  ctx.round = 1;
  ctx.seed = node.ledger().SortitionSeed(1, node.params().seed_refresh_interval);
  ctx.prev_hash = node.ledger().genesis().Hash();
  ctx.total_weight = h.genesis().config.allocations.size() * 1000;
  ctx.weight_of = [](const PublicKey&) { return 1000u; };
  EXPECT_TRUE(ValidateCertificate(cert, ctx, node.params(), h.vrf(), h.signer()));

  // Tampered certificates must fail.
  Certificate bad = cert;
  bad.block_hash[0] ^= 1;
  EXPECT_FALSE(ValidateCertificate(bad, ctx, node.params(), h.vrf(), h.signer()));
  bad = cert;
  ASSERT_FALSE(bad.votes.empty());
  bad.votes.pop_back();
  // Removing a vote may or may not drop below threshold; removing all must.
  bad.votes.clear();
  EXPECT_FALSE(ValidateCertificate(bad, ctx, node.params(), h.vrf(), h.signer()));
}

TEST(ConsensusIntegrationTest, SurvivesEquivocatingProposers) {
  HarnessConfig cfg = SmallConfig(6);
  cfg.n_nodes = 25;
  cfg.malicious_fraction = 0.2;  // 5 equivocating nodes, 20% of stake.
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(3)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(ConsensusIntegrationTest, SurvivesSilentCommitteeMembers) {
  HarnessConfig cfg = SmallConfig(7);
  cfg.n_nodes = 25;
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    if (id < 3) {  // 12% of stake is fail-stopped.
      return std::make_unique<SilentNode>(id, sim, gossip, key, genesis, params, crypto);
    }
    return nullptr;
  };
  // Treat silent nodes as malicious for the harness's accounting.
  cfg.malicious_fraction = 3.0 / 25.0;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(3)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
}

TEST(ConsensusIntegrationTest, SurvivesPacketLoss) {
  HarnessConfig cfg = SmallConfig(8);
  SimHarness h(cfg);
  h.SetNetworkAdversary(std::make_unique<LossyAdversary>(0.05, 99));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(3)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
}

TEST(ConsensusIntegrationTest, PartitionPreservesSafety) {
  HarnessConfig cfg = SmallConfig(9);
  cfg.n_nodes = 20;
  cfg.params.max_steps = 12;  // Keep the stuck period short in sim time.
  SimHarness h(cfg);
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  // Partition during the whole first round's agreement, then heal.
  h.SetNetworkAdversary(
      std::make_unique<PartitionAdversary>(group_a, Seconds(0), Seconds(300)));
  h.Start();
  h.sim().RunUntil(Seconds(900));
  // Safety must hold no matter what liveness did: no conflicting finals.
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
}

TEST(ConsensusIntegrationTest, PartitionThenHealEventuallyProgresses) {
  HarnessConfig cfg = SmallConfig(10);
  cfg.n_nodes = 20;
  SimHarness h(cfg);
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  // Short partition that delays but does not exhaust MaxSteps.
  h.SetNetworkAdversary(
      std::make_unique<PartitionAdversary>(group_a, Seconds(0), Seconds(120)));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(4)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(ConsensusIntegrationTest, TargetedDosOnSomeUsersDoesNotStopOthers) {
  HarnessConfig cfg = SmallConfig(11);
  cfg.n_nodes = 25;
  SimHarness h(cfg);
  // DoS 3 users for the whole run (their stake is effectively offline).
  h.SetNetworkAdversary(std::make_unique<TargetedDosAdversary>(
      std::set<NodeId>{5, 6, 7}, Seconds(0), Hours(10)));
  h.Start();
  // The other nodes keep confirming rounds.
  auto still_running = [&] {
    size_t done = 0;
    for (size_t i = 0; i < h.node_count(); ++i) {
      if (i >= 5 && i <= 7) {
        continue;
      }
      if (h.node(i).ledger().chain_length() > 2) {
        ++done;
      }
    }
    return done;
  };
  h.sim().RunUntil(Minutes(10));
  EXPECT_GE(still_running(), h.node_count() - 3 - 2);
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
}

TEST(ConsensusIntegrationTest, VerificationCacheIsEffective) {
  SimHarness h(SmallConfig(12));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  // Every vote is verified once and reused by ~all other nodes.
  EXPECT_GT(h.cache().hits(), h.cache().misses());
}

TEST(ConsensusIntegrationTest, SimCryptoBackendAgrees) {
  HarnessConfig cfg = SmallConfig(13);
  cfg.use_sim_crypto = true;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(2)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(ConsensusIntegrationTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    SimHarness h(SmallConfig(seed));
    h.Start();
    h.RunRounds(2, Hours(2));
    return h.node(0).ledger().tip_hash();
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

TEST(ConsensusIntegrationTest, CityLatencyModelAlsoConverges) {
  HarnessConfig cfg = SmallConfig(14);
  cfg.latency = HarnessConfig::Latency::kCity;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  EXPECT_TRUE(h.CheckSafety().ok);
}

TEST(ConsensusIntegrationTest, EmptyVoterMinorityCannotStarveBlocks) {
  HarnessConfig cfg = SmallConfig(15);
  cfg.n_nodes = 25;
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    if (id < 4) {
      return std::make_unique<EmptyVoterNode>(id, sim, gossip, key, genesis, params, crypto);
    }
    return nullptr;
  };
  cfg.malicious_fraction = 4.0 / 25.0;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(3)));
  // Honest majority still commits non-empty blocks.
  size_t non_empty = 0;
  for (const auto& rec : h.node(10).round_records()) {
    if (rec.end_time > 0 && !rec.empty) {
      ++non_empty;
    }
  }
  EXPECT_GE(non_empty, 1u);
  EXPECT_TRUE(h.CheckSafety().ok);
}

}  // namespace
}  // namespace algorand
