// Ledger substrate tests: transactions, accounts, blocks, chain state, seed
// schedule, look-back weights, fork switching.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ledger/ledger.h"

namespace algorand {
namespace {

const Ed25519Signer kSigner;

struct Fixture {
  Fixture() : bundle(MakeTestGenesis(4, 1000, 42)), ledger(bundle.config) {}
  GenesisBundle bundle;
  Ledger ledger;

  const Ed25519KeyPair& key(size_t i) const { return bundle.keys[i]; }
  PublicKey pk(size_t i) const { return bundle.keys[i].public_key; }

  Block NextEmptyBlock() const {
    return Block::MakeEmpty(ledger.next_round(), ledger.tip_hash(),
                            ledger.SeedForRound(ledger.Tip().round + 1 - 1));
  }
};

TEST(TransactionTest, SignAndVerify) {
  DeterministicRng rng(1);
  FixedBytes<32> s;
  rng.FillBytes(s.data(), 32);
  Ed25519KeyPair sender = Ed25519KeyFromSeed(s);
  rng.FillBytes(s.data(), 32);
  Ed25519KeyPair receiver = Ed25519KeyFromSeed(s);
  Transaction tx = MakeTransaction(sender, receiver.public_key, 100, 0, kSigner);
  EXPECT_TRUE(VerifyTransactionSignature(tx, kSigner));
  tx.amount = 200;
  EXPECT_FALSE(VerifyTransactionSignature(tx, kSigner));
}

TEST(TransactionTest, SerializeRoundTrip) {
  DeterministicRng rng(2);
  FixedBytes<32> s;
  rng.FillBytes(s.data(), 32);
  Ed25519KeyPair sender = Ed25519KeyFromSeed(s);
  Transaction tx = MakeTransaction(sender, sender.public_key, 5, 3, kSigner, 1);
  auto bytes = tx.Serialize();
  EXPECT_EQ(bytes.size(), Transaction::kWireSize);
  Reader r(bytes);
  auto back = Transaction::Deserialize(&r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Id(), tx.Id());
  EXPECT_EQ(back->amount, 5u);
  EXPECT_EQ(back->fee, 1u);
  EXPECT_EQ(back->nonce, 3u);
}

TEST(TransactionTest, DeserializeRejectsTruncation) {
  Transaction tx;
  auto bytes = tx.Serialize();
  bytes.pop_back();
  Reader r(bytes);
  EXPECT_FALSE(Transaction::Deserialize(&r).has_value());
}

TEST(AccountTableTest, CreditAndBalances) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  t.Credit(b, 50);
  t.Credit(a, 10);
  EXPECT_EQ(t.BalanceOf(a), 110u);
  EXPECT_EQ(t.BalanceOf(b), 50u);
  EXPECT_EQ(t.total_weight(), 160u);
  EXPECT_EQ(t.account_count(), 2u);
}

TEST(AccountTableTest, ApplyTransfersValue) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 30;
  tx.nonce = 0;
  EXPECT_TRUE(t.ApplyTransaction(tx));
  EXPECT_EQ(t.BalanceOf(a), 70u);
  EXPECT_EQ(t.BalanceOf(b), 30u);
  EXPECT_EQ(t.total_weight(), 100u);
}

TEST(AccountTableTest, RejectsWrongNonce) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 10;
  tx.nonce = 5;
  EXPECT_FALSE(t.ApplyTransaction(tx));
  EXPECT_EQ(t.BalanceOf(a), 100u);
}

TEST(AccountTableTest, RejectsOverdraft) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 101;
  tx.nonce = 0;
  EXPECT_FALSE(t.ApplyTransaction(tx));
}

TEST(AccountTableTest, RejectsOverdraftViaFee) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 95;
  tx.fee = 10;
  tx.nonce = 0;
  EXPECT_FALSE(t.ApplyTransaction(tx));
}

TEST(AccountTableTest, FeesAreBurned) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 40;
  tx.fee = 5;
  tx.nonce = 0;
  EXPECT_TRUE(t.ApplyTransaction(tx));
  EXPECT_EQ(t.total_weight(), 95u);
}

TEST(AccountTableTest, NoncePreventsDoubleSpendReplay) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  t.Credit(a, 100);
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 60;
  tx.nonce = 0;
  EXPECT_TRUE(t.ApplyTransaction(tx));
  EXPECT_FALSE(t.ApplyTransaction(tx));  // Same nonce again: rejected.
}

TEST(AccountTableTest, UnknownSenderRejected) {
  AccountTable t;
  PublicKey a, b;
  a[0] = 1;
  b[0] = 2;
  Transaction tx;
  tx.from = a;
  tx.to = b;
  tx.amount = 0;
  EXPECT_FALSE(t.CheckTransaction(tx));
}

TEST(BlockTest, SerializeRoundTrip) {
  Fixture f;
  Block b;
  b.round = 1;
  b.prev_hash = f.ledger.tip_hash();
  b.timestamp = Seconds(30);
  b.proposer = f.pk(0);
  b.padding_bytes = 1000;
  b.txns.push_back(MakeTransaction(f.key(0), f.pk(1), 10, 0, kSigner));
  auto bytes = b.Serialize();
  auto back = Block::Deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Hash(), b.Hash());
  EXPECT_EQ(back->txns.size(), 1u);
  EXPECT_EQ(back->padding_bytes, 1000u);
}

TEST(BlockTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk(10, 0xab);
  EXPECT_FALSE(Block::Deserialize(junk).has_value());
}

TEST(BlockTest, DeserializeRejectsMalformedTxCount) {
  // Fuzz the little-endian u32 transaction count in an otherwise valid
  // serialization. The count's byte offset is the size of a zero-transaction
  // block minus the count field itself (it is the last header field).
  Fixture f;
  Block b;
  b.round = 1;
  b.prev_hash = f.ledger.tip_hash();
  for (uint64_t n = 0; n < 3; ++n) {
    b.txns.push_back(MakeTransaction(f.key(0), f.pk(1), 10, n, kSigner));
  }
  std::vector<uint8_t> bytes = b.Serialize();
  Block empty;
  const size_t count_offset = empty.Serialize().size() - 4;
  ASSERT_TRUE(Block::Deserialize(bytes).has_value());

  auto with_count = [&](uint32_t n) {
    std::vector<uint8_t> fuzzed = bytes;
    for (size_t i = 0; i < 4; ++i) {
      fuzzed[count_offset + i] = static_cast<uint8_t>(n >> (8 * i));
    }
    return fuzzed;
  };
  // One more transaction than the remaining bytes can hold: the exact
  // boundary the remaining-bytes bound must catch (the old whole-buffer
  // bound admitted it and fell through to a truncation error later —
  // malformed counts must be rejected up front, before any reserve()).
  EXPECT_FALSE(Block::Deserialize(with_count(4)).has_value());
  // A count whose byte size overflows any plausible buffer.
  EXPECT_FALSE(Block::Deserialize(with_count(0xFFFFFFFFu)).has_value());
  // Fewer transactions than bytes present: trailing bytes are malformed too.
  EXPECT_FALSE(Block::Deserialize(with_count(2)).has_value());
  // A truncated final transaction with a correct count still fails cleanly.
  std::vector<uint8_t> truncated = bytes;
  truncated.resize(truncated.size() - 7);
  EXPECT_FALSE(Block::Deserialize(truncated).has_value());
}

TEST(BlockTest, WireSizeIncludesPadding) {
  Block b;
  uint64_t base = b.WireSize();
  b.padding_bytes = 5000;
  EXPECT_EQ(b.WireSize(), base + 5000);
}

TEST(BlockTest, HashChangesWithContent) {
  Block a;
  Block b;
  b.round = 1;
  EXPECT_NE(a.Hash(), b.Hash());
  Block c;
  c.padding_digest[0] = 1;  // Different synthetic payload -> different hash.
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(BlockTest, EmptyBlockIsDeterministic) {
  Fixture f;
  SeedBytes seed = f.ledger.SeedForRound(1);
  Block e1 = Block::MakeEmpty(1, f.ledger.tip_hash(), seed);
  Block e2 = Block::MakeEmpty(1, f.ledger.tip_hash(), seed);
  EXPECT_EQ(e1.Hash(), e2.Hash());
  EXPECT_TRUE(e1.is_empty);
}

TEST(LedgerTest, GenesisState) {
  Fixture f;
  EXPECT_EQ(f.ledger.chain_length(), 1u);
  EXPECT_EQ(f.ledger.next_round(), 1u);
  EXPECT_EQ(f.ledger.total_weight(), 4000u);
  EXPECT_EQ(f.ledger.WeightOf(f.pk(0)), 1000u);
  EXPECT_EQ(f.ledger.ConsensusAtRound(0), ConsensusKind::kFinal);
}

TEST(LedgerTest, AppendExtendsChain) {
  Fixture f;
  Block b = Block::MakeEmpty(1, f.ledger.tip_hash(), f.ledger.SeedForRound(1));
  EXPECT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));
  EXPECT_EQ(f.ledger.next_round(), 2u);
  EXPECT_EQ(f.ledger.tip_hash(), b.Hash());
}

TEST(LedgerTest, AppendRejectsWrongRound) {
  Fixture f;
  Block b = Block::MakeEmpty(2, f.ledger.tip_hash(), f.ledger.SeedForRound(1));
  EXPECT_FALSE(f.ledger.Append(b, ConsensusKind::kFinal));
}

TEST(LedgerTest, AppendRejectsWrongPrevHash) {
  Fixture f;
  Hash256 wrong;
  wrong[0] = 9;
  Block b = Block::MakeEmpty(1, wrong, f.ledger.SeedForRound(1));
  EXPECT_FALSE(f.ledger.Append(b, ConsensusKind::kFinal));
}

TEST(LedgerTest, AppendAppliesTransactions) {
  Fixture f;
  Block b;
  b.round = 1;
  b.prev_hash = f.ledger.tip_hash();
  b.next_seed = Block::DerivedSeed(f.ledger.SeedForRound(1), 1);
  b.txns.push_back(MakeTransaction(f.key(0), f.pk(1), 250, 0, kSigner));
  ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));
  EXPECT_EQ(f.ledger.WeightOf(f.pk(0)), 750u);
  EXPECT_EQ(f.ledger.WeightOf(f.pk(1)), 1250u);
}

TEST(LedgerTest, AppendRejectsBlockWithBadTransaction) {
  Fixture f;
  Block b;
  b.round = 1;
  b.prev_hash = f.ledger.tip_hash();
  b.txns.push_back(MakeTransaction(f.key(0), f.pk(1), 9999, 0, kSigner));  // Overdraft.
  EXPECT_FALSE(f.ledger.Append(b, ConsensusKind::kFinal));
  EXPECT_EQ(f.ledger.chain_length(), 1u);
  EXPECT_EQ(f.ledger.WeightOf(f.pk(0)), 1000u);
}

TEST(LedgerTest, ConfirmationSemantics) {
  Fixture f;
  Block b;
  b.round = 1;
  b.prev_hash = f.ledger.tip_hash();
  Transaction tx = MakeTransaction(f.key(0), f.pk(1), 5, 0, kSigner);
  b.txns.push_back(tx);
  ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kTentative));
  // Tentative only: not confirmed yet (§4).
  EXPECT_FALSE(f.ledger.IsConfirmed(tx.Id()));
  // A final successor confirms it.
  Block next = Block::MakeEmpty(2, f.ledger.tip_hash(), f.ledger.SeedForRound(2));
  ASSERT_TRUE(f.ledger.Append(next, ConsensusKind::kFinal));
  EXPECT_TRUE(f.ledger.IsConfirmed(tx.Id()));
}

TEST(LedgerTest, FinalBlockConfirmsPredecessors) {
  Fixture f;
  for (int r = 1; r <= 3; ++r) {
    Block b = Block::MakeEmpty(static_cast<uint64_t>(r), f.ledger.tip_hash(),
                               f.ledger.SeedForRound(static_cast<uint64_t>(r)));
    ASSERT_TRUE(f.ledger.Append(
        b, r == 3 ? ConsensusKind::kFinal : ConsensusKind::kTentative));
  }
  EXPECT_EQ(f.ledger.ConsensusAtRound(1), ConsensusKind::kFinal);
  EXPECT_EQ(f.ledger.ConsensusAtRound(2), ConsensusKind::kFinal);
  EXPECT_EQ(f.ledger.HighestFinalRound(), 3u);
}

TEST(LedgerTest, SeedScheduleAdvances) {
  Fixture f;
  SeedBytes s1 = f.ledger.SeedForRound(1);
  Block b = Block::MakeEmpty(1, f.ledger.tip_hash(), s1);
  ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));
  SeedBytes s2 = f.ledger.SeedForRound(2);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s2, b.next_seed);
}

TEST(LedgerTest, SortitionSeedRefreshInterval) {
  Fixture f;
  for (int r = 1; r <= 10; ++r) {
    Block b = Block::MakeEmpty(static_cast<uint64_t>(r), f.ledger.tip_hash(),
                               f.ledger.SeedForRound(static_cast<uint64_t>(r)));
    ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));
  }
  // With R = 4: rounds 4..7 use seed_3, rounds 8..11 use seed_7.
  EXPECT_EQ(f.ledger.SortitionSeed(4, 4), f.ledger.SeedForRound(3));
  EXPECT_EQ(f.ledger.SortitionSeed(5, 4), f.ledger.SeedForRound(3));
  EXPECT_EQ(f.ledger.SortitionSeed(7, 4), f.ledger.SeedForRound(3));
  EXPECT_EQ(f.ledger.SortitionSeed(8, 4), f.ledger.SeedForRound(7));
  // Early rounds clamp to the genesis seed.
  EXPECT_EQ(f.ledger.SortitionSeed(1, 4), f.ledger.SeedForRound(0));
}

TEST(LedgerTest, BlockByHashFindsChainBlocks) {
  Fixture f;
  Block b = Block::MakeEmpty(1, f.ledger.tip_hash(), f.ledger.SeedForRound(1));
  ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));
  auto found = f.ledger.BlockByHash(b.Hash());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->round, 1u);
  Hash256 unknown;
  unknown[5] = 1;
  EXPECT_FALSE(f.ledger.BlockByHash(unknown).has_value());
}

TEST(LedgerTest, ReplaceSuffixSwitchesFork) {
  Fixture f;
  // Build chain: rounds 1, 2 (tentative).
  Block b1 = Block::MakeEmpty(1, f.ledger.tip_hash(), f.ledger.SeedForRound(1));
  ASSERT_TRUE(f.ledger.Append(b1, ConsensusKind::kTentative));
  Block b2 = Block::MakeEmpty(2, f.ledger.tip_hash(), f.ledger.SeedForRound(2));
  ASSERT_TRUE(f.ledger.Append(b2, ConsensusKind::kTentative));

  // Alternative round-2 block with a transaction.
  Block alt2;
  alt2.round = 2;
  alt2.prev_hash = b1.Hash();
  alt2.next_seed = Block::DerivedSeed(b1.next_seed, 2);
  alt2.txns.push_back(MakeTransaction(f.key(1), f.pk(2), 100, 0, kSigner));
  ASSERT_TRUE(f.ledger.ReplaceSuffix(2, {alt2}));
  EXPECT_EQ(f.ledger.tip_hash(), alt2.Hash());
  EXPECT_EQ(f.ledger.WeightOf(f.pk(2)), 1100u);
}

TEST(LedgerTest, ReplaceSuffixRejectsBrokenChain) {
  Fixture f;
  Block b1 = Block::MakeEmpty(1, f.ledger.tip_hash(), f.ledger.SeedForRound(1));
  ASSERT_TRUE(f.ledger.Append(b1, ConsensusKind::kTentative));
  Block bad;
  bad.round = 2;
  bad.prev_hash[0] = 77;  // Does not match b1.
  EXPECT_FALSE(f.ledger.ReplaceSuffix(2, {bad}));
  EXPECT_EQ(f.ledger.tip_hash(), b1.Hash());
}

TEST(LedgerTest, ReplaceSuffixRejectsBadTransactions) {
  Fixture f;
  Block b1 = Block::MakeEmpty(1, f.ledger.tip_hash(), f.ledger.SeedForRound(1));
  ASSERT_TRUE(f.ledger.Append(b1, ConsensusKind::kTentative));
  Block alt1;
  alt1.round = 1;
  alt1.prev_hash = f.ledger.genesis().Hash();
  alt1.next_seed = Block::DerivedSeed(f.ledger.SeedForRound(1), 1);
  alt1.txns.push_back(MakeTransaction(f.key(0), f.pk(1), 99999, 0, kSigner));
  EXPECT_FALSE(f.ledger.ReplaceSuffix(1, {alt1}));
  EXPECT_EQ(f.ledger.tip_hash(), b1.Hash());
  EXPECT_EQ(f.ledger.WeightOf(f.pk(0)), 1000u);
}

TEST(LedgerTest, LookbackWeightsLagTransfers) {
  GenesisBundle bundle = MakeTestGenesis(3, 1000, 7);
  bundle.config.weight_lookback_rounds = 2;
  Ledger ledger(bundle.config);
  const auto& k0 = bundle.keys[0];
  PublicKey p1 = bundle.keys[1].public_key;

  // Round 1: k0 sends 500 to p1.
  Block b1;
  b1.round = 1;
  b1.prev_hash = ledger.tip_hash();
  b1.next_seed = Block::DerivedSeed(ledger.SeedForRound(1), 1);
  b1.txns.push_back(MakeTransaction(k0, p1, 500, 0, kSigner));
  ASSERT_TRUE(ledger.Append(b1, ConsensusKind::kFinal));

  // Immediately after, look-back weights still reflect genesis.
  // (Snapshots: genesis, round1 -> not deep enough yet; falls back to current
  // until history exceeds the lookback.)
  Block b2 = Block::MakeEmpty(2, ledger.tip_hash(), ledger.SeedForRound(2));
  ASSERT_TRUE(ledger.Append(b2, ConsensusKind::kFinal));
  // Now snapshots = {genesis, r1, r2}, lookback 2 -> use genesis weights.
  EXPECT_EQ(ledger.WeightOf(k0.public_key), 1000u);
  EXPECT_EQ(ledger.accounts().WeightOf(k0.public_key), 500u);
}

TEST(LedgerTest, AccountsAtRoundReplaysHistory) {
  Fixture f;
  // Round 1: pk0 -> pk1 100. Round 2: pk1 -> pk2 50.
  Block b1;
  b1.round = 1;
  b1.prev_hash = f.ledger.tip_hash();
  b1.next_seed = Block::DerivedSeed(f.ledger.SeedForRound(1), 1);
  b1.txns.push_back(MakeTransaction(f.key(0), f.pk(1), 100, 0, kSigner));
  ASSERT_TRUE(f.ledger.Append(b1, ConsensusKind::kFinal));
  Block b2;
  b2.round = 2;
  b2.prev_hash = f.ledger.tip_hash();
  b2.next_seed = Block::DerivedSeed(f.ledger.SeedForRound(2), 2);
  b2.txns.push_back(MakeTransaction(f.key(1), f.pk(2), 50, 0, kSigner));
  ASSERT_TRUE(f.ledger.Append(b2, ConsensusKind::kFinal));

  AccountTable at0 = f.ledger.AccountsAtRound(0);
  EXPECT_EQ(at0.BalanceOf(f.pk(0)), 1000u);
  EXPECT_EQ(at0.BalanceOf(f.pk(1)), 1000u);
  AccountTable at1 = f.ledger.AccountsAtRound(1);
  EXPECT_EQ(at1.BalanceOf(f.pk(0)), 900u);
  EXPECT_EQ(at1.BalanceOf(f.pk(1)), 1100u);
  AccountTable at2 = f.ledger.AccountsAtRound(2);
  EXPECT_EQ(at2.BalanceOf(f.pk(1)), 1050u);
  EXPECT_EQ(at2.BalanceOf(f.pk(2)), 1050u);
  // Beyond the chain: same as the tip.
  EXPECT_EQ(f.ledger.AccountsAtRound(99).BalanceOf(f.pk(2)), 1050u);
}

TEST(LedgerTest, MakeTestGenesisIsDeterministic) {
  GenesisBundle a = MakeTestGenesis(5, 10, 99);
  GenesisBundle b = MakeTestGenesis(5, 10, 99);
  EXPECT_EQ(a.keys[3].public_key, b.keys[3].public_key);
  EXPECT_EQ(a.config.seed0, b.config.seed0);
  GenesisBundle c = MakeTestGenesis(5, 10, 100);
  EXPECT_NE(a.keys[0].public_key, c.keys[0].public_key);
}

}  // namespace
}  // namespace algorand
