// Determinism regression: a (seed, scenario) pair must replay identically —
// same per-node chains, same executed-event count — on both event-queue
// implementations (reference std::map and the 4-ary heap), across repeat
// runs, and across parallel-engine worker counts (workers=4 must be
// bit-identical to workers=1). This is the contract that makes every other
// test in the suite reproducible, so it gets its own canary.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/sim_harness.h"
#include "src/obs/safety_auditor.h"

namespace algorand {
namespace {

struct RunOutcome {
  std::vector<Hash256> tips;  // Per-node chain tip after the run.
  std::vector<uint64_t> lengths;
  uint64_t executed_events = 0;

  bool operator==(const RunOutcome& o) const {
    return tips == o.tips && lengths == o.lengths && executed_events == o.executed_events;
  }
};

// sim_workers: -1 = sequential engine (map_queue selects its queue); >= 1 =
// the conservative-lookahead parallel engine with that many shard workers.
RunOutcome RunOnce(uint64_t seed, bool map_queue, double malicious = 0.0, int sim_workers = -1) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.use_sim_crypto = true;
  // Pin the single-threaded path even when CI exports ALGORAND_VERIFY_WORKERS
  // (the pipeline never changes decisions, but this test compares exact event
  // counts, which prewarming does perturb).
  cfg.verify_workers = 0;
  cfg.use_map_event_queue = map_queue;
  cfg.malicious_fraction = malicious;
  if (sim_workers >= 1) {
    cfg.sim_workers = static_cast<size_t>(sim_workers);
  }
  SimHarness h(cfg);

  // The online safety auditor must stay silent regardless of engine: a
  // violation under one worker count but not another would mean the parallel
  // barriers leaked a torn protocol state.
  SafetyAuditorConfig audit_cfg;
  audit_cfg.step_threshold = cfg.params.StepThreshold();
  audit_cfg.final_threshold = cfg.params.FinalThreshold();
  SafetyAuditor auditor(audit_cfg);
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });

  h.Start();
  EXPECT_TRUE(h.RunRounds(3));
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  RunOutcome out;
  out.executed_events = h.sim().executed_events();
  for (size_t i = 0; i < h.node_count(); ++i) {
    out.tips.push_back(h.node(i).ledger().tip_hash());
    out.lengths.push_back(h.node(i).ledger().chain_length());
  }
  return out;
}

TEST(SimDeterminismTest, HeapAndMapQueuesProduceIdenticalRuns) {
  for (uint64_t seed : {1u, 7u}) {
    RunOutcome heap = RunOnce(seed, /*map_queue=*/false);
    RunOutcome map = RunOnce(seed, /*map_queue=*/true);
    EXPECT_EQ(heap.executed_events, map.executed_events) << "seed=" << seed;
    EXPECT_TRUE(heap == map) << "seed=" << seed;
  }
}

TEST(SimDeterminismTest, RepeatRunsAreBitIdentical) {
  RunOutcome a = RunOnce(42, /*map_queue=*/false);
  RunOutcome b = RunOnce(42, /*map_queue=*/false);
  EXPECT_TRUE(a == b);
}

TEST(SimDeterminismTest, HoldsUnderAdversarialTraffic) {
  // Equivocating nodes stress duplicate/relay paths where the memoized
  // DedupId and the seen-window pruning do the most work.
  RunOutcome heap = RunOnce(5, /*map_queue=*/false, /*malicious=*/0.2);
  RunOutcome map = RunOnce(5, /*map_queue=*/true, /*malicious=*/0.2);
  EXPECT_TRUE(heap == map);
}

// The parallel-engine contract: the conservative-lookahead windows and
// per-stream event keys make the execution order a pure function of the
// scenario, never of how streams are sharded across workers. workers=4 must
// replay workers=1 bit-for-bit — same tips, same chain lengths, same
// executed-event count.
TEST(SimDeterminismTest, ParallelWorkersProduceIdenticalRuns) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    RunOutcome one = RunOnce(seed, /*map_queue=*/false, /*malicious=*/0.0, /*sim_workers=*/1);
    RunOutcome four = RunOnce(seed, /*map_queue=*/false, /*malicious=*/0.0, /*sim_workers=*/4);
    EXPECT_EQ(one.executed_events, four.executed_events) << "seed=" << seed;
    EXPECT_TRUE(one == four) << "seed=" << seed;
  }
}

TEST(SimDeterminismTest, ParallelHoldsUnderAdversarialTraffic) {
  // Equivocators plus cross-shard relay storms: the worst case for the
  // exchange queues, since most duplicate traffic crosses shard boundaries.
  RunOutcome one = RunOnce(5, /*map_queue=*/false, /*malicious=*/0.2, /*sim_workers=*/1);
  RunOutcome four = RunOnce(5, /*map_queue=*/false, /*malicious=*/0.2, /*sim_workers=*/4);
  EXPECT_EQ(one.executed_events, four.executed_events);
  EXPECT_TRUE(one == four);
}

TEST(SimDeterminismTest, ParallelRepeatRunsAreBitIdentical) {
  RunOutcome a = RunOnce(42, /*map_queue=*/false, /*malicious=*/0.0, /*sim_workers=*/3);
  RunOutcome b = RunOnce(42, /*map_queue=*/false, /*malicious=*/0.0, /*sim_workers=*/3);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace algorand
