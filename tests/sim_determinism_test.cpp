// Determinism regression: a (seed, scenario) pair must replay identically —
// same per-node chains, same executed-event count — on both event-queue
// implementations (reference std::map and the 4-ary heap) and across repeat
// runs. This is the contract that makes every other test in the suite
// reproducible, so it gets its own canary.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/sim_harness.h"

namespace algorand {
namespace {

struct RunOutcome {
  std::vector<Hash256> tips;  // Per-node chain tip after the run.
  std::vector<uint64_t> lengths;
  uint64_t executed_events = 0;

  bool operator==(const RunOutcome& o) const {
    return tips == o.tips && lengths == o.lengths && executed_events == o.executed_events;
  }
};

RunOutcome RunOnce(uint64_t seed, bool map_queue, double malicious = 0.0) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.use_sim_crypto = true;
  // Pin the single-threaded path even when CI exports ALGORAND_VERIFY_WORKERS
  // (the pipeline never changes decisions, but this test compares exact event
  // counts, which prewarming does perturb).
  cfg.verify_workers = 0;
  cfg.use_map_event_queue = map_queue;
  cfg.malicious_fraction = malicious;
  SimHarness h(cfg);
  h.Start();
  EXPECT_TRUE(h.RunRounds(3));
  RunOutcome out;
  out.executed_events = h.sim().executed_events();
  for (size_t i = 0; i < h.node_count(); ++i) {
    out.tips.push_back(h.node(i).ledger().tip_hash());
    out.lengths.push_back(h.node(i).ledger().chain_length());
  }
  return out;
}

TEST(SimDeterminismTest, HeapAndMapQueuesProduceIdenticalRuns) {
  for (uint64_t seed : {1u, 7u}) {
    RunOutcome heap = RunOnce(seed, /*map_queue=*/false);
    RunOutcome map = RunOnce(seed, /*map_queue=*/true);
    EXPECT_EQ(heap.executed_events, map.executed_events) << "seed=" << seed;
    EXPECT_TRUE(heap == map) << "seed=" << seed;
  }
}

TEST(SimDeterminismTest, RepeatRunsAreBitIdentical) {
  RunOutcome a = RunOnce(42, /*map_queue=*/false);
  RunOutcome b = RunOnce(42, /*map_queue=*/false);
  EXPECT_TRUE(a == b);
}

TEST(SimDeterminismTest, HoldsUnderAdversarialTraffic) {
  // Equivocating nodes stress duplicate/relay paths where the memoized
  // DedupId and the seen-window pruning do the most work.
  RunOutcome heap = RunOnce(5, /*map_queue=*/false, /*malicious=*/0.2);
  RunOutcome map = RunOnce(5, /*map_queue=*/true, /*malicious=*/0.2);
  EXPECT_TRUE(heap == map);
}

}  // namespace
}  // namespace algorand
