// Nakamoto baseline simulator tests.
#include <gtest/gtest.h>

#include "src/baseline/nakamoto.h"

namespace algorand {
namespace {

TEST(NakamotoTest, BlockCountMatchesInterval) {
  NakamotoConfig cfg;
  cfg.mean_block_interval_s = 600;
  NakamotoResult r = SimulateNakamoto(cfg, 7 * 24 * 3600.0);  // One week.
  // Expect ~1008 blocks in a week; Poisson sigma ~32.
  EXPECT_NEAR(static_cast<double>(r.blocks_mined), 1008.0, 150.0);
}

TEST(NakamotoTest, ThroughputMatchesBitcoin) {
  // Bitcoin: 1 MB / 10 min -> ~6 MB committed per hour (§10.2).
  NakamotoConfig cfg;
  NakamotoResult r = SimulateNakamoto(cfg, 7 * 24 * 3600.0);
  EXPECT_NEAR(r.throughput_bytes_per_hour / 1e6, 6.0, 1.2);
}

TEST(NakamotoTest, ConfirmationTakesAboutAnHour) {
  NakamotoConfig cfg;
  NakamotoResult r = SimulateNakamoto(cfg, 7 * 24 * 3600.0);
  // 6 confirmations at 10-minute intervals: ~3600 s give or take.
  EXPECT_GT(r.mean_confirmation_latency_s, 2000.0);
  EXPECT_LT(r.mean_confirmation_latency_s, 6000.0);
}

TEST(NakamotoTest, ForkRateGrowsWithPropagationDelay) {
  NakamotoConfig slow;
  slow.propagation_delay_s = 60;
  NakamotoConfig fast;
  fast.propagation_delay_s = 1;
  NakamotoResult r_slow = SimulateNakamoto(slow, 30 * 24 * 3600.0);
  NakamotoResult r_fast = SimulateNakamoto(fast, 30 * 24 * 3600.0);
  EXPECT_GT(r_slow.fork_rate, r_fast.fork_rate);
  // Rough theory: fork rate ~ delay / interval.
  EXPECT_NEAR(r_slow.fork_rate, 60.0 / 600.0, 0.05);
}

TEST(NakamotoTest, DeterministicGivenSeed) {
  NakamotoConfig cfg;
  NakamotoResult a = SimulateNakamoto(cfg, 24 * 3600.0);
  NakamotoResult b = SimulateNakamoto(cfg, 24 * 3600.0);
  EXPECT_EQ(a.blocks_mined, b.blocks_mined);
  EXPECT_EQ(a.orphans, b.orphans);
}

TEST(NakamotoTest, EmptyDurationYieldsZero) {
  NakamotoConfig cfg;
  NakamotoResult r = SimulateNakamoto(cfg, 0.0);
  EXPECT_EQ(r.blocks_mined, 0u);
}

TEST(NakamotoTest, MainChainNeverExceedsMined) {
  NakamotoConfig cfg;
  cfg.propagation_delay_s = 120;  // Heavy forking.
  NakamotoResult r = SimulateNakamoto(cfg, 14 * 24 * 3600.0);
  EXPECT_LE(r.main_chain_blocks, r.blocks_mined);
  EXPECT_EQ(r.orphans, r.blocks_mined - r.main_chain_blocks);
}

}  // namespace
}  // namespace algorand
