// Tests for the observability subsystem (src/obs): metrics registry
// semantics, histogram percentiles against the exact stats helpers, snapshot
// merging, the round tracer's ring buffer, and end-to-end integration through
// SimHarness.
#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/core/sim_harness.h"
#include "src/obs/metrics.h"
#include "src/obs/round_tracer.h"

namespace algorand {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(RegistryTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x.y");
  Counter& b = reg.GetCounter("x.y");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  Histogram& h1 = reg.GetHistogram("h", {1, 2, 3});
  Histogram& h2 = reg.GetHistogram("h", {10, 20});  // Bounds fixed at creation.
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(HistogramTest, BucketsObservationsByBound) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("h", {10, 20, 30});
  h.Observe(5);    // Bucket 0 (<= 10).
  h.Observe(10);   // Bucket 0 (inclusive upper bound).
  h.Observe(15);   // Bucket 1.
  h.Observe(100);  // Overflow.
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("h");
  ASSERT_EQ(hs.buckets.size(), 4u);
  EXPECT_EQ(hs.buckets[0], 2u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 0u);
  EXPECT_EQ(hs.buckets[3], 1u);
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, 130.0);
  EXPECT_DOUBLE_EQ(hs.Mean(), 32.5);
}

TEST(HistogramTest, UnsortedBoundsAreNormalized) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("h", {30, 10, 20, 10});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 10);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 30);
}

TEST(HistogramTest, PercentileTracksExactStats) {
  // With fine buckets, the interpolated histogram percentile must stay close
  // to the exact sorted-vector percentile: within one bucket width.
  std::vector<double> bounds;
  for (double b = 1; b <= 1000; b += 1) {
    bounds.push_back(b);
  }
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", bounds);
  std::vector<double> values;
  uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;  // LCG.
    double v = static_cast<double>(x % 900) + 50.0;
    values.push_back(v);
    h.Observe(v);
  }
  const HistogramSnapshot hs = reg.Snapshot().histograms.at("lat");
  std::sort(values.begin(), values.end());
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    double exact = PercentileSorted(values, q);
    EXPECT_NEAR(hs.Percentile(q), exact, 1.01) << "q=" << q;
  }
  Summary s = Summarize(values);
  EXPECT_NEAR(hs.Percentile(0.5), s.median, 1.01);
  EXPECT_NEAR(hs.Mean(), s.mean, 1e-6);
}

TEST(SnapshotTest, MergeSumsCountersAndBuckets) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("c").Increment(2);
  b.GetCounter("c").Increment(3);
  b.GetCounter("only_b").Increment(1);
  a.GetGauge("g").Set(5);
  b.GetGauge("g").Set(7);
  a.GetHistogram("h", {1, 2}).Observe(0.5);
  b.GetHistogram("h", {1, 2}).Observe(1.5);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.CounterValue("c"), 5u);
  EXPECT_EQ(merged.CounterValue("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("g"), 12);
  const HistogramSnapshot& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_DOUBLE_EQ(h.sum, 2.0);
}

TEST(SnapshotTest, MergeIsAssociative) {
  // (a + b) + c == a + (b + c) for counters, gauges and histograms.
  auto make = [](uint64_t n, double obs) {
    auto reg = std::make_unique<MetricsRegistry>();
    reg->GetCounter("c").Increment(n);
    reg->GetGauge("g").Add(static_cast<int64_t>(n));
    reg->GetHistogram("h", {1, 10, 100}).Observe(obs);
    return reg;
  };
  auto a = make(1, 0.5);
  auto b = make(2, 5);
  auto c = make(4, 50);

  MetricsSnapshot left = a->Snapshot();
  left.Merge(b->Snapshot());
  left.Merge(c->Snapshot());

  MetricsSnapshot bc = b->Snapshot();
  bc.Merge(c->Snapshot());
  MetricsSnapshot right = a->Snapshot();
  right.Merge(bc);

  EXPECT_EQ(left.ToJson(), right.ToJson());
  EXPECT_EQ(left.CounterValue("c"), 7u);
}

TEST(SnapshotTest, MismatchedHistogramBoundsCountConflict) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetHistogram("h", {1, 2}).Observe(1);
  b.GetHistogram("h", {5, 6}).Observe(5);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.histograms.at("h").count, 1u);  // Keeps the existing one.
  EXPECT_EQ(merged.CounterValue("obs.merge_conflicts"), 1u);
}

TEST(SnapshotTest, CounterSumByPrefix) {
  MetricsRegistry reg;
  reg.GetCounter("gossip.msgs_in.vote").Increment(3);
  reg.GetCounter("gossip.msgs_in.block").Increment(4);
  reg.GetCounter("gossip.msgs_out.vote").Increment(9);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterSumByPrefix("gossip.msgs_in."), 7u);
  EXPECT_EQ(snap.CounterSumByPrefix("gossip."), 16u);
  EXPECT_EQ(snap.CounterSumByPrefix("nope."), 0u);
}

TEST(SnapshotTest, JsonExportIsWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("a.b").Increment(7);
  reg.GetGauge("g").Set(-2);
  reg.GetHistogram("h", {1, 2}).Observe(1.5);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
  // Balanced braces (cheap structural check without a JSON parser).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string && ch == '{') {
      ++depth;
    } else if (!in_string && ch == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(RoundTracerTest, RecordsInOrder) {
  RoundTracer tracer(8);
  for (uint64_t i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.node = static_cast<uint32_t>(i);
    ev.kind = TraceKind::kRoundStart;
    tracer.Record(ev);
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].node, i);
  }
}

TEST(RoundTracerTest, RingBufferWrapsKeepingNewest) {
  RoundTracer tracer(4);
  for (uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.round = i;
    tracer.Record(ev);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: rounds 6, 7, 8, 9.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].round, 6u + i);
  }
}

TEST(RoundTracerTest, AttachMetricsMirrorsRingHealth) {
  MetricsRegistry reg;
  RoundTracer tracer(4);
  tracer.AttachMetrics(&reg);
  for (uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.round = i;
    tracer.Record(ev);
  }
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("trace.recorded"), 10u);
  EXPECT_EQ(snap.CounterValue("trace.dropped"), 6u);
  // The ring is full: occupancy gauge pins at capacity.
  EXPECT_EQ(snap.gauges.at("trace.ring_occupancy"), 4);
  // Detach stops the mirroring but keeps the accessors live.
  tracer.AttachMetrics(nullptr);
  tracer.Record(TraceEvent{});
  EXPECT_EQ(reg.Snapshot().CounterValue("trace.recorded"), 10u);
  EXPECT_EQ(tracer.recorded(), 11u);
}

TEST(RoundTracerTest, OccupancyGaugeTracksPartialFill) {
  MetricsRegistry reg;
  RoundTracer tracer(8);
  tracer.AttachMetrics(&reg);
  tracer.Record(TraceEvent{});
  tracer.Record(TraceEvent{});
  tracer.Record(TraceEvent{});
  EXPECT_EQ(reg.Snapshot().gauges.at("trace.ring_occupancy"), 3);
  EXPECT_EQ(reg.Snapshot().CounterValue("trace.dropped"), 0u);
}

TEST(RoundTracerTest, ObserverSeesEveryEventInOrder) {
  RoundTracer tracer(2);  // Smaller than the event count: drops don't matter.
  std::vector<uint64_t> seen;
  tracer.SetObserver([&seen](const TraceEvent& ev) { seen.push_back(ev.round); });
  for (uint64_t i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.round = i;
    tracer.Record(ev);
  }
  ASSERT_EQ(seen.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[i], i);
  }
  tracer.SetObserver(nullptr);  // Cleared: no further callbacks.
  tracer.Record(TraceEvent{});
  EXPECT_EQ(seen.size(), 5u);
}

TEST(HistogramTest, EstimateQuantilesMatchesPercentile) {
  MetricsRegistry reg;
  std::vector<double> bounds;
  for (double b = 10; b <= 1000; b += 10) {
    bounds.push_back(b);
  }
  Histogram& h = reg.GetHistogram("lat", bounds);
  for (int i = 1; i <= 100; ++i) {
    h.Observe(static_cast<double>(i * 7 % 950) + 1);
  }
  const HistogramSnapshot hs = reg.Snapshot().histograms.at("lat");
  HistogramSnapshot::Quantiles q = hs.EstimateQuantiles();
  EXPECT_DOUBLE_EQ(q.p50, hs.Percentile(0.5));
  EXPECT_DOUBLE_EQ(q.p90, hs.Percentile(0.9));
  EXPECT_DOUBLE_EQ(q.p99, hs.Percentile(0.99));
  EXPECT_LE(q.p50, q.p90);
  EXPECT_LE(q.p90, q.p99);
}

TEST(SnapshotTest, ExportsIncludeInterpolatedQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {1, 2, 4, 8});
  h.Observe(1.5);
  h.Observe(3);
  MetricsSnapshot snap = reg.Snapshot();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p90="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(RoundTracerTest, JsonlHasOneObjectPerEvent) {
  RoundTracer tracer(16);
  TraceEvent ev;
  ev.at = Millis(1500);
  ev.node = 3;
  ev.round = 2;
  ev.kind = TraceKind::kStepExit;
  ev.step = 4;
  ev.a = 87;
  tracer.Record(ev);
  ev.kind = TraceKind::kRoundEnd;
  ev.flag = kTraceFinal;
  tracer.Record(ev);
  std::string jsonl = tracer.ToJsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"ev\":\"step_exit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\":\"round_end\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"node\":3"), std::string::npos);
}

TEST(VerificationCacheTest, RoutesHitsAndMissesThroughRegistry) {
  MetricsRegistry reg;
  VerificationCache cache;
  cache.AttachMetrics(&reg);
  Hash256 id{};
  id[0] = 1;
  EXPECT_EQ(cache.GetOrCompute(id, [] { return 7u; }), 7u);
  EXPECT_EQ(cache.GetOrCompute(id, [] { return 9u; }), 7u);  // Cached.
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("verify.cache_misses"), 1u);
  EXPECT_EQ(snap.CounterValue("verify.cache_hits"), 1u);
  EXPECT_EQ(cache.hits(), 1u);  // Accessor reads the same counter.
}

// End-to-end: a small simulated deployment populates BA* histograms, the
// gossip counters balance, and every honest node leaves a full round trace.
class HarnessObsTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRounds = 2;

  void SetUp() override {
    HarnessConfig cfg;
    cfg.n_nodes = 20;
    cfg.use_sim_crypto = true;
    cfg.params = ProtocolParams::ScaledCommittees(0.5);
    harness_ = std::make_unique<SimHarness>(cfg);
    harness_->Start();
    ASSERT_TRUE(harness_->RunRounds(kRounds));
    snapshot_ = harness_->AggregateMetrics();
  }

  std::unique_ptr<SimHarness> harness_;
  MetricsSnapshot snapshot_;
};

TEST_F(HarnessObsTest, BaStepHistogramsArePopulated) {
  const HistogramSnapshot& steps = snapshot_.histograms.at("ba.step_time_ms");
  EXPECT_GT(steps.count, 0u);
  EXPECT_GT(steps.Percentile(0.5), 0.0);
  const HistogramSnapshot& rounds = snapshot_.histograms.at("ba.round_time_ms");
  // Every node contributes one observation per completed round.
  EXPECT_GE(rounds.count, kRounds * harness_->node_count());
  EXPECT_GT(snapshot_.CounterValue("node.rounds.completed"), 0u);
  EXPECT_GT(snapshot_.CounterValue("node.votes.cast"), 0u);
  EXPECT_GT(snapshot_.CounterValue("node.votes.counted"), 0u);
}

TEST_F(HarnessObsTest, GossipCountersBalance) {
  uint64_t in = snapshot_.CounterSumByPrefix("gossip.msgs_in.");
  uint64_t out = snapshot_.CounterSumByPrefix("gossip.msgs_out.");
  EXPECT_GT(in, 0u);
  // The sim network is lossless, but the run stops the instant the last
  // honest node finishes its rounds — copies still in flight never arrive.
  EXPECT_LE(in, out);
  EXPECT_GT(in, out - out / 20);  // Within 5% of sends.
  // Every arrival is dispatched exactly once.
  EXPECT_EQ(in, snapshot_.CounterValue("gossip.delivered") +
                    snapshot_.CounterValue("gossip.dup_dropped") +
                    snapshot_.CounterValue("gossip.rejected"));
}

TEST_F(HarnessObsTest, TracerCoversEveryNodeAndRound) {
  std::vector<TraceEvent> events = harness_->tracer().Events();
  ASSERT_FALSE(events.empty());
  // Each node records a round_start for rounds 1..kRounds (and likely the
  // next round it began before the run stopped).
  std::vector<int> starts(harness_->node_count(), 0);
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceKind::kRoundStart && ev.round >= 1 && ev.round <= kRounds) {
      ++starts[ev.node];
    }
  }
  for (size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i], static_cast<int>(kRounds)) << "node " << i;
  }
  // Round ends carry the final/tentative flag and a non-zero block prefix.
  bool saw_round_end = false;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceKind::kRoundEnd && (ev.flag & kTraceHung) == 0) {
      saw_round_end = true;
      EXPECT_NE(ev.value_prefix, 0u);
    }
  }
  EXPECT_TRUE(saw_round_end);
}

TEST_F(HarnessObsTest, AggregateIncludesSimAndNetworkTotals) {
  EXPECT_GT(snapshot_.CounterValue("sim.events_executed"), 0u);
  EXPECT_GT(snapshot_.CounterValue("net.bytes_sent"), 0u);
  EXPECT_GT(snapshot_.CounterValue("trace.events_recorded"), 0u);
  EXPECT_GT(snapshot_.CounterValue("verify.cache_hits"), 0u);
}

}  // namespace
}  // namespace algorand
