// Node-level behaviour tests: proposal building, block validation (§8.1),
// relay rate limiting (§8.4), the block-fetch path, and ablation switches.
#include <gtest/gtest.h>

#include "src/core/sim_harness.h"

namespace algorand {
namespace {

HarnessConfig BaseConfig(uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 64 * 1024;
  cfg.latency = HarnessConfig::Latency::kUniform;
  return cfg;
}

TEST(NodeTest, ProposedBlocksCarryPendingTransactionsAndPadding) {
  SimHarness h(BaseConfig(31));
  for (int i = 0; i < 5; ++i) {
    h.SubmitPayment(static_cast<size_t>(i), static_cast<size_t>(i + 5), 10, 0);
  }
  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  const Block& block = h.node(0).ledger().BlockAtRound(1);
  EXPECT_EQ(block.txns.size(), 5u);
  // Padding fills the block to the configured size.
  EXPECT_EQ(block.padding_bytes + block.txns.size() * Transaction::kWireSize, 64u * 1024);
  // Included transactions leave the pool.
  EXPECT_EQ(h.node(0).pending_txn_count(), 0u);
}

TEST(NodeTest, InvalidTransactionsAreNotProposed) {
  SimHarness h(BaseConfig(32));
  // Overdraft: stake is 1000 per user.
  h.SubmitPayment(1, 2, 50000, 0);
  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  EXPECT_TRUE(h.node(0).ledger().BlockAtRound(1).txns.empty());
}

TEST(NodeTest, DoubleVotesAreRelayedAtMostOnce) {
  // Equivocating committee members send two votes per step; the §8.4 relay
  // rule means honest nodes forward at most one vote per (pk, round, step).
  HarnessConfig cfg = BaseConfig(33);
  cfg.n_nodes = 25;
  // 20% malicious stake with committees large enough that the honest margin
  // over the vote threshold stays comfortable (see DESIGN.md on scaling).
  cfg.params = ProtocolParams::ScaledCommittees(0.1);
  cfg.malicious_fraction = 0.20;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(2)));
  EXPECT_TRUE(h.CheckSafety().ok);
  EXPECT_TRUE(h.ChainsConsistent());
  // Counting dedups per public key, so double votes never double-count: all
  // rounds still complete, mostly final.
  size_t final_rounds = 0, total_rounds = 0;
  for (const RoundRecord& rec : h.node(10).round_records()) {
    if (rec.end_time > 0) {
      ++total_rounds;
      final_rounds += rec.final;
    }
  }
  EXPECT_GE(total_rounds, 2u);
  EXPECT_GE(final_rounds, 1u);
}

// An adversary that drops every full block destined for one victim, while
// letting votes and priority messages through: the victim must agree on the
// block hash via BA* and then fetch the block from peers (BlockOfHash).
class BlockStarver : public NetworkAdversary {
 public:
  explicit BlockStarver(NodeId victim) : victim_(victim) {}
  AdversaryAction OnTransmit(NodeId, NodeId to, const MessagePtr& msg, SimTime) override {
    if (to == victim_ && std::string(msg->TypeName()) == "block") {
      if (++dropped_ > 0 && allow_after_ > 0 && dropped_ > allow_after_) {
        return AdversaryAction::Deliver();
      }
      return AdversaryAction::Drop();
    }
    return AdversaryAction::Deliver();
  }
  void set_allow_after(uint64_t n) { allow_after_ = n; }
  uint64_t dropped() const { return dropped_; }

 private:
  NodeId victim_;
  uint64_t dropped_ = 0;
  uint64_t allow_after_ = 0;
};

TEST(NodeTest, FetchesAgreedBlockItNeverReceived) {
  HarnessConfig cfg = BaseConfig(34);
  SimHarness h(cfg);
  auto starver = std::make_unique<BlockStarver>(3);
  BlockStarver* starver_ptr = starver.get();
  // Block proposals are dropped; after BA* agrees, the victim requests the
  // block, and the point-to-point reply (also type "block") must get
  // through: allow deliveries after the proposal wave (first few drops).
  starver_ptr->set_allow_after(8);
  h.SetNetworkAdversary(std::move(starver));
  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  EXPECT_GT(starver_ptr->dropped(), 0u);
  // The victim ends with the same chain as everyone else.
  EXPECT_EQ(h.node(3).ledger().tip_hash(), h.node(0).ledger().tip_hash());
  EXPECT_FALSE(h.node(3).ledger().BlockAtRound(1).is_empty);
}

TEST(NodeTest, PriorityGossipDisabledStillConverges) {
  HarnessConfig cfg = BaseConfig(35);
  cfg.params.priority_gossip_enabled = false;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  EXPECT_TRUE(h.CheckSafety().ok);
  EXPECT_TRUE(h.ChainsConsistent());
  // No priority messages were sent at all.
  EXPECT_EQ(h.network().message_counts_by_type().count("priority"), 0u);
}

TEST(NodeTest, FinalStepDisabledYieldsTentativeOnly) {
  HarnessConfig cfg = BaseConfig(36);
  cfg.params.final_step_enabled = false;
  SimHarness h(cfg);
  Transaction tx = h.SubmitPayment(1, 2, 10, 0);
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  for (const RoundRecord& rec : h.node(0).round_records()) {
    if (rec.end_time > 0) {
      EXPECT_FALSE(rec.final);
    }
  }
  // Never confirmed without finality.
  EXPECT_FALSE(h.node(0).ledger().IsConfirmed(tx.Id()));
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(NodeTest, GossipedTransactionReachesEveryPoolAndConfirms) {
  SimHarness h(BaseConfig(40));
  h.Start();
  // Submit through ONE node only; gossip must carry it to whoever proposes.
  Transaction tx = MakeTransaction(h.genesis().keys[4], h.genesis().keys[6].public_key, 123, 0,
                                   h.signer());
  h.node(4).GossipTransaction(tx);
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  EXPECT_TRUE(h.node(0).ledger().IsConfirmed(tx.Id()));
  EXPECT_EQ(h.node(11).ledger().accounts().BalanceOf(h.genesis().keys[6].public_key), 1123u);
}

TEST(NodeTest, InvalidGossipedTransactionsAreNotRelayed) {
  SimHarness h(BaseConfig(41));
  h.Start();
  Transaction bad = MakeTransaction(h.genesis().keys[4], h.genesis().keys[6].public_key, 1, 0,
                                    h.signer());
  bad.amount = 999;  // Break the signature after signing.
  h.node(4).GossipTransaction(bad);
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  EXPECT_FALSE(h.node(0).ledger().IsConfirmed(bad.Id()));
  // Balance unchanged anywhere.
  EXPECT_EQ(h.node(8).ledger().accounts().BalanceOf(h.genesis().keys[6].public_key), 1000u);
}

TEST(NodeTest, RoundRecordsCaptureTimingBreakdown) {
  SimHarness h(BaseConfig(37));
  h.Start();
  ASSERT_TRUE(h.RunRounds(2, Hours(1)));
  for (size_t i = 0; i < 3; ++i) {
    for (const RoundRecord& rec : h.node(i).round_records()) {
      if (rec.end_time == 0) {
        continue;
      }
      EXPECT_GE(rec.proposal_done_at, rec.start_time);
      EXPECT_GE(rec.reduction_done_at, rec.proposal_done_at);
      EXPECT_GE(rec.binary_done_at, rec.reduction_done_at);
      EXPECT_GE(rec.end_time, rec.binary_done_at);
      // The winning block was seen before agreement started.
      if (!rec.empty && rec.candidate_block_at > 0) {
        EXPECT_LE(rec.candidate_block_at, rec.proposal_done_at);
      }
    }
  }
}

TEST(NodeTest, CertificatesCoverEveryCompletedRound) {
  SimHarness h(BaseConfig(38));
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(1)));
  const Node& node = h.node(0);
  for (uint64_t r = 1; r <= 3; ++r) {
    ASSERT_TRUE(node.certificates().count(r)) << "round " << r;
    const Certificate& cert = node.certificates().at(r);
    EXPECT_EQ(cert.block_hash, node.ledger().BlockAtRound(r).Hash());
    // The certificate's weighted votes exceed the step threshold.
    double total = 0;
    for (const VoteMessage& v : cert.votes) {
      (void)v;
      total += 1;  // At least one sub-vote each; exact weight checked by ValidateCertificate.
    }
    EXPECT_GT(total, 0);
  }
}

TEST(NodeTest, EmptyVotersAloneProduceEmptyButConsistentRounds) {
  // All nodes vote empty: rounds commit empty blocks yet stay consistent.
  HarnessConfig cfg = BaseConfig(39);
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    return std::make_unique<EmptyVoterNode>(id, sim, gossip, key, genesis, params, crypto);
  };
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));
  EXPECT_TRUE(h.node(5).ledger().BlockAtRound(1).is_empty);
  EXPECT_TRUE(h.ChainsConsistent());
}

}  // namespace
}  // namespace algorand
