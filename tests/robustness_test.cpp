// Robustness tests: mutated/garbage bytes must never crash a deserializer or
// the wire codec (they parse or reject); randomized vote schedules must never
// break BA* invariants; skewed stake distributions must still reach
// consensus; fixed seeds must reproduce identical chains (golden test).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ba_star.h"
#include "src/core/sim_harness.h"
#include "src/core/snapshot.h"
#include "src/core/wire_codec.h"
#include "src/netsim/simulation.h"

namespace algorand {
namespace {

// --- Deserializer fuzzing (deterministic) ---

TEST(FuzzTest, RandomBytesNeverCrashDecoders) {
  DeterministicRng rng(1);
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng.UniformU64(600);
    std::vector<uint8_t> junk(len);
    rng.FillBytes(junk.data(), junk.size());
    // Any of these may return nullopt/nullptr; none may crash.
    (void)DecodeMessage(junk);
    (void)Block::Deserialize(junk);
    (void)VoteMessage::Deserialize(junk);
    (void)PriorityMessage::Deserialize(junk);
    (void)BlockRequestMessage::Deserialize(junk);
    (void)RecoveryProposalMessage::Deserialize(junk);
    (void)CatchupRequestMessage::Deserialize(junk);
    (void)CatchupResponseMessage::Deserialize(junk);
    (void)Certificate::Deserialize(junk);
    (void)NodeSnapshot::Deserialize(junk);
    Reader r(junk);
    (void)Transaction::Deserialize(&r);
  }
}

TEST(FuzzTest, MutatedValidMessagesParseOrReject) {
  DeterministicRng rng(2);
  FixedBytes<32> seed;
  rng.FillBytes(seed.data(), 32);
  Ed25519KeyPair key = Ed25519KeyFromSeed(seed);
  Ed25519Signer signer;
  VrfOutput sorthash;
  VrfProof proof;
  Hash256 prev, value;
  auto vote = MakeVote(key, 3, 5, sorthash, proof, prev, value, signer);
  std::vector<uint8_t> encoded = EncodeMessage(std::make_shared<VoteMessage>(vote));
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = encoded;
    // 1-3 random mutations: flips, truncations, extensions.
    int edits = 1 + static_cast<int>(rng.UniformU64(3));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformU64(3)) {
        case 0:
          if (!mutated.empty()) {
            mutated[rng.UniformU64(mutated.size())] ^= static_cast<uint8_t>(1 + rng.UniformU64(255));
          }
          break;
        case 1:
          if (!mutated.empty()) {
            mutated.resize(rng.UniformU64(mutated.size()));
          }
          break;
        default:
          mutated.push_back(static_cast<uint8_t>(rng.UniformU64(256)));
          break;
      }
    }
    MessagePtr decoded = DecodeMessage(mutated);
    if (decoded) {
      // Anything that parses must be internally consistent enough to hash.
      (void)decoded->DedupId();
      (void)decoded->WireSize();
    }
  }
}

TEST(FuzzTest, MutatedCatchupResponsesParseOrReject) {
  // Build a structurally valid (not cryptographically valid) response with
  // blocks, certificates and a final cert, then mutate it heavily: the
  // decoder must parse-or-reject, never crash.
  DeterministicRng rng(4);
  FixedBytes<32> seed;
  rng.FillBytes(seed.data(), 32);
  Ed25519KeyPair key = Ed25519KeyFromSeed(seed);
  Ed25519Signer signer;
  auto resp = std::make_shared<CatchupResponseMessage>();
  resp->responder = 3;
  resp->seq = 42;
  resp->from_round = 1;
  resp->tip_round = 2;
  for (uint64_t r = 1; r <= 2; ++r) {
    Block block;
    block.round = r;
    block.padding_bytes = 64;
    Certificate cert;
    cert.round = r;
    cert.step = kStepFinal;
    cert.block_hash = block.Hash();
    VrfOutput sorthash;
    VrfProof proof;
    Hash256 prev;
    cert.votes.push_back(
        MakeVote(key, r, kStepFinal, sorthash, proof, prev, cert.block_hash, signer));
    resp->entries.push_back(CatchupResponseMessage::Entry{block, cert});
  }
  resp->final_cert = resp->entries.back().cert;
  std::vector<uint8_t> encoded = EncodeMessage(resp);
  ASSERT_FALSE(encoded.empty());
  // Round trip sanity before mutating.
  ASSERT_NE(DecodeMessage(encoded), nullptr);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = encoded;
    int edits = 1 + static_cast<int>(rng.UniformU64(3));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformU64(3)) {
        case 0:
          if (!mutated.empty()) {
            mutated[rng.UniformU64(mutated.size())] ^=
                static_cast<uint8_t>(1 + rng.UniformU64(255));
          }
          break;
        case 1:
          if (!mutated.empty()) {
            mutated.resize(rng.UniformU64(mutated.size()));
          }
          break;
        default:
          mutated.push_back(static_cast<uint8_t>(rng.UniformU64(256)));
          break;
      }
    }
    MessagePtr decoded = DecodeMessage(mutated);
    if (decoded) {
      (void)decoded->DedupId();
      (void)decoded->WireSize();
    }
  }
}

TEST(FuzzTest, MutatedSnapshotsParseOrReject) {
  NodeSnapshot snap;
  snap.shard_count = 2;
  for (uint64_t r = 1; r <= 3; ++r) {
    Block block;
    block.round = r;
    block.padding_bytes = 32;
    snap.blocks.push_back(block);
    snap.kinds.push_back(r == 1 ? 1 : 0);
    Certificate cert;
    cert.round = r;
    cert.block_hash = block.Hash();
    snap.certificates.push_back(cert);
  }
  std::vector<uint8_t> encoded = snap.Serialize();
  ASSERT_TRUE(NodeSnapshot::Deserialize(encoded).has_value());
  DeterministicRng rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = encoded;
    mutated[rng.UniformU64(mutated.size())] ^= static_cast<uint8_t>(1 + rng.UniformU64(255));
    if (rng.UniformU64(4) == 0) {
      mutated.resize(rng.UniformU64(mutated.size()));
    }
    auto back = NodeSnapshot::Deserialize(mutated);
    if (back) {
      (void)back->Serialize();
    }
  }
}

TEST(FuzzTest, MutatedBlocksParseOrReject) {
  Block block;
  block.round = 7;
  block.padding_bytes = 100;
  DeterministicRng rng(3);
  FixedBytes<32> kseed;
  rng.FillBytes(kseed.data(), 32);
  Ed25519KeyPair key = Ed25519KeyFromSeed(kseed);
  SimSigner signer;
  for (int i = 0; i < 3; ++i) {
    block.txns.push_back(MakeTransaction(key, key.public_key, 1, 0, signer));
  }
  std::vector<uint8_t> encoded = block.Serialize();
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = encoded;
    mutated[rng.UniformU64(mutated.size())] ^= static_cast<uint8_t>(1 + rng.UniformU64(255));
    if (rng.UniformU64(4) == 0) {
      mutated.resize(rng.UniformU64(mutated.size()));
    }
    auto back = Block::Deserialize(mutated);
    if (back) {
      (void)back->Hash();
    }
  }
}

// --- Catch-up under a Byzantine bootstrap server ---

// Serves catch-up batches with one vote signature flipped in every
// certificate: each batch must fail certificate validation at the requester.
class TamperingNode : public Node {
 public:
  using Node::Node;

 protected:
  std::shared_ptr<CatchupResponseMessage> BuildCatchupResponse(
      const CatchupRequestMessage& req) const override {
    auto resp = Node::BuildCatchupResponse(req);
    if (resp != nullptr) {
      for (auto& e : resp->entries) {
        if (!e.cert.votes.empty()) {
          e.cert.votes[0].signature[0] ^= 0x01;
        }
      }
      if (resp->final_cert.has_value() && !resp->final_cert->votes.empty()) {
        resp->final_cert->votes[0].signature[0] ^= 0x01;
      }
    }
    return resp;
  }
};

TEST(CatchupRobustnessTest, TamperedCertificatesNeverAppendAndRotatePeers) {
  // Every peer tampers with catch-up responses. The restarted node must
  // reject each batch, rotate through peers with backoff, and never append a
  // single tampered block — its chain stays frozen at the snapshot.
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = 21;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.use_sim_crypto = true;
  cfg.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                        const Ed25519KeyPair& key, const GenesisConfig& genesis,
                        const ProtocolParams& params, CryptoSuite crypto,
                        AdversaryCoordinator*) -> std::unique_ptr<Node> {
    return std::make_unique<TamperingNode>(id, sim, gossip, key, genesis, params, crypto);
  };
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(1)));
  h.KillNode(9);
  ASSERT_TRUE(h.RunRounds(7, Hours(1)));
  // Restart from snapshot; RestartNode builds a plain (honest) Node, so node
  // 9 is the only honest participant in its own catch-up.
  h.RestartNode(9, /*from_snapshot=*/true);
  uint64_t len_at_restart = h.node(9).ledger().chain_length();
  h.sim().RunUntil(h.sim().now() + Minutes(12));

  // Not one tampered block made it into the ledger.
  EXPECT_EQ(h.node(9).ledger().chain_length(), len_at_restart);
  EXPECT_EQ(h.node(9).catchups_completed(), 0u);
  MetricsSnapshot m = h.AggregateMetrics();
  EXPECT_GE(m.counters["catchup.bad_batches"], 1u);
  EXPECT_GE(m.counters["catchup.peer_rotations"], 2u);
  EXPECT_GE(m.counters["catchup.aborted"], 1u);
  // The rest of the network is unaffected.
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
}

// --- Randomized BA* schedules ---

struct ChaosEnv : BaEnvironment {
  explicit ChaosEnv(Simulation* sim) : sim(sim) {}
  void CastVote(uint32_t step, double, const Hash256& value) override {
    casts.push_back({step, value});
  }
  void ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    sim->Schedule(delay, std::move(fn));
  }
  SimTime Now() const override { return sim->now(); }
  Simulation* sim;
  struct Cast {
    uint32_t step;
    Hash256 value;
  };
  std::vector<Cast> casts;
};

TEST(ChaosTest, RandomVoteSchedulesNeverBreakInvariants) {
  // Feed random (possibly contradictory) votes on random steps at random
  // times. Whatever happens, BA* must terminate with either block, empty, or
  // a hang — never crash, never return a third value, never run past
  // MaxSteps + 3.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    DeterministicRng rng(seed, "chaos");
    ProtocolParams params = ProtocolParams::Paper();
    params.tau_step = 10;
    params.tau_final = 20;
    params.max_steps = 12;

    Simulation sim;
    ChaosEnv env(&sim);
    bool completed = false;
    BaResult result;
    BaStar ba(params, &env, [&](const BaResult& r) {
      completed = true;
      result = r;
    });
    Hash256 block, empty;
    block[0] = 0xbb;
    empty[0] = 0xee;
    ba.Start(block, empty);

    // Random vote storm over the first few minutes.
    int n_votes = 30 + static_cast<int>(rng.UniformU64(100));
    for (int i = 0; i < n_votes; ++i) {
      SimTime at = static_cast<SimTime>(rng.UniformU64(static_cast<uint64_t>(Minutes(8))));
      uint32_t step;
      switch (rng.UniformU64(4)) {
        case 0:
          step = kStepReduction1;
          break;
        case 1:
          step = kStepReduction2;
          break;
        case 2:
          step = kStepFinal;
          break;
        default:
          step = BinaryStepCode(1 + static_cast<int>(rng.UniformU64(12)));
          break;
      }
      Hash256 value = rng.UniformU64(2) ? block : empty;
      uint64_t weight = 1 + rng.UniformU64(4);
      PublicKey pk;
      pk[0] = static_cast<uint8_t>(i);
      pk[1] = static_cast<uint8_t>(i >> 8);
      VrfOutput sorthash;
      sorthash[0] = static_cast<uint8_t>(rng.NextU64());
      sim.ScheduleAt(at, [&ba, step, pk, weight, value, sorthash] {
        ba.OnVote(step, pk, weight, value, sorthash);
      });
    }
    sim.RunUntil(Hours(3));
    ASSERT_TRUE(completed) << "seed " << seed;
    if (!result.hung) {
      EXPECT_TRUE(result.value == block || result.value == empty) << "seed " << seed;
    }
    EXPECT_LE(result.binary_steps, params.max_steps + 1) << "seed " << seed;
  }
}

// --- Skewed stake ---

TEST(SkewedStakeTest, WhalesAndMinnowsStillAgree) {
  // One user holds ~half the stake (50x everyone else); consensus must still
  // work, chains stay consistent, and the whale's multi-selection weight
  // counts correctly in tallies (sub-users, §5.1).
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = 5;
  cfg.stake_of = [](size_t i) { return i == 0 ? 50000u : 1000u; };
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.latency = HarnessConfig::Latency::kUniform;
  SimHarness h(cfg);
  EXPECT_EQ(h.node(3).ledger().total_weight(), 50000u + 19 * 1000);
  h.Start();
  ASSERT_TRUE(h.RunRounds(3, Hours(2)));
  EXPECT_TRUE(h.CheckSafety().ok);
  EXPECT_TRUE(h.ChainsConsistent());
}

TEST(SkewedStakeTest, ProposerSelectionTracksStake) {
  // Across many rounds, the whale (half the stake) should win the proposer
  // slot about half the time.
  HarnessConfig cfg;
  cfg.n_nodes = 10;
  cfg.rng_seed = 6;
  cfg.stake_of = [](size_t i) { return i == 0 ? 9000u : 1000u; };  // 50% whale.
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 8 * 1024;
  cfg.latency = HarnessConfig::Latency::kUniform;
  SimHarness h(cfg);
  h.Start();
  const uint64_t kRounds = 20;
  ASSERT_TRUE(h.RunRounds(kRounds, Hours(4)));
  size_t whale_blocks = 0, total_blocks = 0;
  const Ledger& ledger = h.node(1).ledger();
  for (uint64_t r = 1; r <= kRounds; ++r) {
    const Block& b = ledger.BlockAtRound(r);
    if (b.is_empty) {
      continue;
    }
    ++total_blocks;
    whale_blocks += (b.proposer == h.genesis().keys[0].public_key);
  }
  ASSERT_GT(total_blocks, 10u);
  double frac = static_cast<double>(whale_blocks) / static_cast<double>(total_blocks);
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

// --- Look-back weights (§5.3) at network level ---

TEST(LookbackTest, ConsensusWorksWithLookbackWeightsWhileBalancesShift) {
  HarnessConfig cfg;
  cfg.n_nodes = 15;
  cfg.rng_seed = 11;
  cfg.weight_lookback_rounds = 2;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 16 * 1024;
  cfg.latency = HarnessConfig::Latency::kUniform;
  SimHarness h(cfg);
  // Stake moves every round; sortition keeps using 2-round-old balances.
  for (int i = 0; i < 5; ++i) {
    h.SubmitPayment(static_cast<size_t>(i), static_cast<size_t>(i + 5), 400,
                    /*nonce=*/0);
  }
  h.Start();
  ASSERT_TRUE(h.RunRounds(4, Hours(2)));
  EXPECT_TRUE(h.CheckSafety().ok);
  EXPECT_TRUE(h.ChainsConsistent());
  // Current balances reflect the payments even though sortition lags.
  EXPECT_EQ(h.node(0).ledger().accounts().BalanceOf(h.genesis().keys[5].public_key), 1400u);
}

// --- Participant replacement (§2/§4) ---

TEST(ParticipantReplacementTest, DefeatsAdaptiveDosOnRevealedVoters) {
  auto run = [](bool replacement) {
    HarnessConfig cfg;
    cfg.n_nodes = 200;
    cfg.rng_seed = 13;
    cfg.params = ProtocolParams::Paper();
    cfg.params.tau_proposer = 26;
    cfg.params.tau_step = 30;
    cfg.params.tau_final = 60;
    cfg.params.t_final = 0.60;
    cfg.params.block_size_bytes = 16 << 10;
    cfg.params.participant_replacement_enabled = replacement;
    cfg.params.max_steps = 12;
    cfg.use_sim_crypto = true;
    // Realistic latencies; the adversary's reaction (50 ms) is faster than a
    // BA* step but slower than a node's same-instant vote burst.
    cfg.latency = HarnessConfig::Latency::kCity;
    SimHarness h(cfg);
    h.SetNetworkAdversary(
        std::make_unique<VoterDosAdversary>(Minutes(1), 35, Millis(50)));
    h.Start();
    h.sim().RunUntil(Minutes(4));
    size_t done = 0;
    for (size_t i = 0; i < h.node_count(); ++i) {
      done += h.node(i).ledger().chain_length() > 2;
    }
    EXPECT_TRUE(h.CheckSafety().ok);
    return static_cast<double>(done) / static_cast<double>(h.node_count());
  };
  double with_replacement = run(true);
  double without = run(false);
  EXPECT_GT(with_replacement, 0.5);
  EXPECT_LT(without, 0.2);
  EXPECT_GT(with_replacement, without + 0.3);
}

// --- Golden determinism ---

TEST(GoldenTest, FixedSeedReproducesExactChain) {
  auto run = [] {
    HarnessConfig cfg;
    cfg.n_nodes = 15;
    cfg.rng_seed = 424242;
    cfg.params = ProtocolParams::ScaledCommittees(0.02);
    cfg.params.block_size_bytes = 16 * 1024;
    cfg.latency = HarnessConfig::Latency::kCity;
    SimHarness h(cfg);
    h.SubmitPayment(1, 2, 77, 0);
    h.Start();
    h.RunRounds(2, Hours(1));
    return h.node(0).ledger().tip_hash().ToHex();
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  // The golden value: update deliberately when the protocol changes; any
  // accidental nondeterminism or behavioural drift fails here first.
  RecordProperty("tip", first);
  EXPECT_EQ(first.size(), 64u);
}

}  // namespace
}  // namespace algorand
