// Tests for the internal Curve25519 field/scalar/group arithmetic.
#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/internal/fe25519.h"
#include "src/crypto/internal/ge25519.h"
#include "src/crypto/internal/sc25519.h"
#include "src/crypto/internal/u256.h"

namespace algorand {
namespace internal {
namespace {

Fe RandomFe(DeterministicRng* rng) {
  Fe f;
  for (auto& limb : f.v) {
    limb = rng->NextU64();
  }
  return f;
}

U256 RandomU256(DeterministicRng* rng) {
  U256 u;
  for (auto& limb : u) {
    limb = rng->NextU64();
  }
  return u;
}

TEST(U256Test, AddCarries) {
  U256 a{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  U256 b{1, 0, 0, 0};
  U256 r;
  uint64_t carry = Add(&r, a, b);
  EXPECT_EQ(carry, 1u);
  EXPECT_TRUE(IsZero(r));
}

TEST(U256Test, SubBorrows) {
  U256 a{0, 0, 0, 0};
  U256 b{1, 0, 0, 0};
  U256 r;
  uint64_t borrow = Sub(&r, a, b);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r[0], ~0ULL);
  EXPECT_EQ(r[3], ~0ULL);
}

TEST(U256Test, AddSubRoundTrip) {
  DeterministicRng rng(42);
  for (int i = 0; i < 200; ++i) {
    U256 a = RandomU256(&rng);
    U256 b = RandomU256(&rng);
    U256 sum, back;
    uint64_t carry = Add(&sum, a, b);
    uint64_t borrow = Sub(&back, sum, b);
    EXPECT_EQ(carry, borrow);  // Wrap in add shows up as wrap in sub.
    EXPECT_EQ(Cmp(back, a), 0);
  }
}

TEST(U256Test, MulWideSmall) {
  U256 a{7, 0, 0, 0};
  U256 b{6, 0, 0, 0};
  U512 r = MulWide(a, b);
  EXPECT_EQ(r[0], 42u);
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(r[static_cast<size_t>(i)], 0u);
  }
}

TEST(U256Test, MulWideCross) {
  // (2^64)(2^64) = 2^128.
  U256 a{0, 1, 0, 0};
  U512 r = MulWide(a, a);
  EXPECT_EQ(r[2], 1u);
  EXPECT_EQ(r[0], 0u);
}

TEST(U256Test, Mod512AgainstSmallModulus) {
  // 1000 mod 7 = 6.
  U512 n{1000, 0, 0, 0, 0, 0, 0, 0};
  U256 m{7, 0, 0, 0};
  U256 r = Mod512(n, m);
  EXPECT_EQ(r[0], 6u);
  EXPECT_TRUE(IsZero(U256{r[1], r[2], r[3], 0}));
}

TEST(U256Test, Mod512Identity) {
  // n < m: result is n.
  U512 n{123456789, 0, 0, 0, 0, 0, 0, 0};
  U256 m{0, 0, 0, 1};  // 2^192.
  U256 r = Mod512(n, m);
  EXPECT_EQ(r[0], 123456789u);
}

TEST(U256Test, BitExtraction) {
  U256 a{0b1010, 0, 0, 1};
  EXPECT_EQ(Bit(a, 0), 0);
  EXPECT_EQ(Bit(a, 1), 1);
  EXPECT_EQ(Bit(a, 3), 1);
  EXPECT_EQ(Bit(a, 192), 1);
  EXPECT_EQ(Bit(a, 193), 0);
}

TEST(Fe25519Test, AddCommutes) {
  DeterministicRng rng(1);
  for (int i = 0; i < 100; ++i) {
    Fe a = RandomFe(&rng), b = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FeAdd(a, b), FeAdd(b, a)));
  }
}

TEST(Fe25519Test, MulCommutesAndAssociates) {
  DeterministicRng rng(2);
  for (int i = 0; i < 50; ++i) {
    Fe a = RandomFe(&rng), b = RandomFe(&rng), c = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FeMul(a, b), FeMul(b, a)));
    EXPECT_TRUE(FeEq(FeMul(FeMul(a, b), c), FeMul(a, FeMul(b, c))));
  }
}

TEST(Fe25519Test, Distributive) {
  DeterministicRng rng(3);
  for (int i = 0; i < 50; ++i) {
    Fe a = RandomFe(&rng), b = RandomFe(&rng), c = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FeMul(a, FeAdd(b, c)), FeAdd(FeMul(a, b), FeMul(a, c))));
  }
}

TEST(Fe25519Test, SubInverseOfAdd) {
  DeterministicRng rng(4);
  for (int i = 0; i < 100; ++i) {
    Fe a = RandomFe(&rng), b = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FeSub(FeAdd(a, b), b), a));
  }
}

TEST(Fe25519Test, NegAddsToZero) {
  DeterministicRng rng(5);
  for (int i = 0; i < 100; ++i) {
    Fe a = RandomFe(&rng);
    EXPECT_TRUE(FeIsZero(FeAdd(a, FeNeg(a))));
  }
}

TEST(Fe25519Test, InvertIsMultiplicativeInverse) {
  DeterministicRng rng(6);
  for (int i = 0; i < 20; ++i) {
    Fe a = RandomFe(&rng);
    if (FeIsZero(a)) {
      continue;
    }
    EXPECT_TRUE(FeEq(FeMul(a, FeInvert(a)), FeOne()));
  }
}

TEST(Fe25519Test, InvertZeroIsZero) { EXPECT_TRUE(FeIsZero(FeInvert(FeZero()))); }

TEST(Fe25519Test, SqMatchesMul) {
  DeterministicRng rng(7);
  for (int i = 0; i < 100; ++i) {
    Fe a = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FeSq(a), FeMul(a, a)));
  }
}

TEST(Fe25519Test, BytesRoundTrip) {
  DeterministicRng rng(8);
  for (int i = 0; i < 100; ++i) {
    Fe a = RandomFe(&rng);
    uint8_t buf[32];
    FeToBytes(buf, a);
    Fe b = FeFromBytes(buf);
    EXPECT_TRUE(FeEq(a, b));
  }
}

TEST(Fe25519Test, CanonicalizeBelowPrime) {
  DeterministicRng rng(9);
  for (int i = 0; i < 100; ++i) {
    Fe a = RandomFe(&rng);
    FeCanonicalize(&a);
    EXPECT_LT(Cmp(a.v, FieldPrime()), 0);
  }
}

TEST(Fe25519Test, SqrtM1Squared) {
  Fe i = FeSqrtM1();
  EXPECT_TRUE(FeEq(FeSq(i), FeNeg(FeOne())));
}

TEST(Fe25519Test, PrimeEquivalences) {
  // p = 0 in the field; 2^255 = 19.
  Fe p;
  p.v = FieldPrime();
  EXPECT_TRUE(FeIsZero(p));
  Fe two255;
  two255.v = U256{0, 0, 0, 0x8000000000000000ULL};
  EXPECT_TRUE(FeEq(two255, FeFromU64(19)));
}

TEST(Fe25519Test, PowMatchesRepeatedMul) {
  Fe a = FeFromU64(3);
  U256 e{13, 0, 0, 0};
  Fe expected = FeOne();
  for (int i = 0; i < 13; ++i) {
    expected = FeMul(expected, a);
  }
  EXPECT_TRUE(FeEq(FePow(a, e), expected));
}

TEST(Sc25519Test, ReduceBelowOrderIsIdentity) {
  uint8_t in[64] = {};
  in[0] = 42;
  uint8_t out[32];
  ScReduce64(out, in);
  EXPECT_EQ(out[0], 42);
  for (int i = 1; i < 32; ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(Sc25519Test, ReduceOrderIsZero) {
  uint8_t in[64] = {};
  ScToBytes(in, ScOrder());
  uint8_t out[32];
  ScReduce64(out, in);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(Sc25519Test, ReducedValuesAreCanonical) {
  DeterministicRng rng(10);
  for (int i = 0; i < 100; ++i) {
    uint8_t in[64];
    rng.FillBytes(in, sizeof(in));
    uint8_t out[32];
    ScReduce64(out, in);
    EXPECT_TRUE(ScIsCanonical(out));
  }
}

TEST(Sc25519Test, MulAddSmallValues) {
  uint8_t a[32] = {}, b[32] = {}, c[32] = {}, out[32];
  a[0] = 5;
  b[0] = 7;
  c[0] = 3;
  ScMulAdd(out, a, b, c);
  EXPECT_EQ(out[0], 38);
  for (int i = 1; i < 32; ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(Sc25519Test, MulAddReducesModOrder) {
  // (L-1)*1 + 1 = L = 0 mod L.
  uint8_t a[32], b[32] = {}, c[32] = {}, out[32];
  U256 l_minus_1 = ScOrder();
  U256 one{1, 0, 0, 0};
  Sub(&l_minus_1, l_minus_1, one);
  ScToBytes(a, l_minus_1);
  b[0] = 1;
  c[0] = 1;
  ScMulAdd(out, a, b, c);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(Ge25519Test, BasePointOnCurve) {
  // Encode/decode round trip through the canonical encoding.
  uint8_t enc[32];
  GeToBytes(enc, GeBasePoint());
  auto p = GeFromBytes(enc);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(GeEq(*p, GeBasePoint()));
}

TEST(Ge25519Test, BasePointEncodingIsStandard) {
  // The canonical Ed25519 base point encoding: 0x58 followed by 31 0x66 bytes
  // read back from hex (little-endian y = 4/5).
  uint8_t enc[32];
  GeToBytes(enc, GeBasePoint());
  algorand::PublicKey expected = algorand::PublicKey::FromHex(
      "5866666666666666666666666666666666666666666666666666666666666666");
  EXPECT_EQ(0, memcmp(enc, expected.data(), 32));
}

TEST(Ge25519Test, IdentityProperties) {
  GePoint id = GeIdentity();
  EXPECT_TRUE(GeIsIdentity(id));
  EXPECT_TRUE(GeEq(GeAdd(id, GeBasePoint()), GeBasePoint()));
  EXPECT_TRUE(GeEq(GeDouble(id), id));
}

TEST(Ge25519Test, DoubleMatchesAdd) {
  GePoint b = GeBasePoint();
  EXPECT_TRUE(GeEq(GeDouble(b), GeAdd(b, b)));
  GePoint b2 = GeDouble(b);
  EXPECT_TRUE(GeEq(GeDouble(b2), GeAdd(b2, b2)));
}

TEST(Ge25519Test, AddCommutesAndAssociates) {
  GePoint b = GeBasePoint();
  GePoint p = GeDouble(b);            // 2B
  GePoint q = GeAdd(GeDouble(p), b);  // 5B
  EXPECT_TRUE(GeEq(GeAdd(p, q), GeAdd(q, p)));
  EXPECT_TRUE(GeEq(GeAdd(GeAdd(p, q), b), GeAdd(p, GeAdd(q, b))));
}

TEST(Ge25519Test, SubIsInverseOfAdd) {
  GePoint b = GeBasePoint();
  GePoint p = GeDouble(GeDouble(b));  // 4B
  EXPECT_TRUE(GeEq(GeSub(GeAdd(p, b), b), p));
}

TEST(Ge25519Test, NegAddsToIdentity) {
  GePoint b = GeBasePoint();
  EXPECT_TRUE(GeIsIdentity(GeAdd(b, GeNeg(b))));
}

TEST(Ge25519Test, ScalarMultSmall) {
  uint8_t three[32] = {};
  three[0] = 3;
  GePoint b = GeBasePoint();
  GePoint expected = GeAdd(GeDouble(b), b);
  EXPECT_TRUE(GeEq(GeScalarMult(three, b), expected));
}

TEST(Ge25519Test, ScalarMultZeroIsIdentity) {
  uint8_t zero[32] = {};
  EXPECT_TRUE(GeIsIdentity(GeScalarMult(zero, GeBasePoint())));
}

TEST(Ge25519Test, OrderTimesBaseIsIdentity) {
  uint8_t l_bytes[32];
  ScToBytes(l_bytes, ScOrder());
  EXPECT_TRUE(GeIsIdentity(GeScalarMult(l_bytes, GeBasePoint())));
}

TEST(Ge25519Test, ScalarMultDistributesOverScalarAdd) {
  // (a+b)P == aP + bP for random reduced scalars.
  DeterministicRng rng(20);
  for (int i = 0; i < 5; ++i) {
    uint8_t wide_a[64], wide_b[64], a[32], b[32], zero[32] = {}, one[32] = {};
    one[0] = 1;
    rng.FillBytes(wide_a, 64);
    rng.FillBytes(wide_b, 64);
    ScReduce64(a, wide_a);
    ScReduce64(b, wide_b);
    uint8_t sum[32];
    ScMulAdd(sum, a, one, b);  // a*1 + b mod L.
    (void)zero;
    GePoint lhs = GeScalarMultBase(sum);
    GePoint rhs = GeAdd(GeScalarMultBase(a), GeScalarMultBase(b));
    EXPECT_TRUE(GeEq(lhs, rhs));
  }
}

TEST(Ge25519Test, CompressionRoundTrip) {
  DeterministicRng rng(21);
  for (int i = 0; i < 10; ++i) {
    uint8_t wide[64], s[32];
    rng.FillBytes(wide, 64);
    ScReduce64(s, wide);
    GePoint p = GeScalarMultBase(s);
    uint8_t enc[32];
    GeToBytes(enc, p);
    auto q = GeFromBytes(enc);
    ASSERT_TRUE(q.has_value());
    EXPECT_TRUE(GeEq(p, *q));
  }
}

TEST(Ge25519Test, FromBytesRejectsNonCurve) {
  // y = 2 gives x^2 = 3/(4d+1), which happens to be a non-square; count a few
  // known-bad encodings among random ones: at least some random 32-byte
  // strings must fail decompression (about half).
  DeterministicRng rng(22);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    uint8_t enc[32];
    rng.FillBytes(enc, 32);
    enc[31] &= 0x7f;
    if (!GeFromBytes(enc).has_value()) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 10);
  EXPECT_LT(failures, 40);
}

TEST(Ge25519Test, TableBaseMultMatchesGenericScalarMult) {
  // The windowed fixed-base path must agree with plain double-and-add for
  // random reduced scalars and edge scalars.
  DeterministicRng rng(23);
  for (int i = 0; i < 10; ++i) {
    uint8_t wide[64], s[32];
    rng.FillBytes(wide, 64);
    ScReduce64(s, wide);
    EXPECT_TRUE(GeEq(GeScalarMultBase(s), GeScalarMult(s, GeBasePoint()))) << "iter " << i;
  }
  uint8_t zero[32] = {};
  EXPECT_TRUE(GeIsIdentity(GeScalarMultBase(zero)));
  uint8_t one[32] = {};
  one[0] = 1;
  EXPECT_TRUE(GeEq(GeScalarMultBase(one), GeBasePoint()));
  uint8_t top[32] = {};
  top[31] = 0x10;  // 2^252, exercising the highest table window.
  EXPECT_TRUE(GeEq(GeScalarMultBase(top), GeScalarMult(top, GeBasePoint())));
}

TEST(Ge25519Test, MulByCofactorIsEightTimes) {
  uint8_t eight[32] = {};
  eight[0] = 8;
  GePoint b = GeBasePoint();
  EXPECT_TRUE(GeEq(GeMulByCofactor(b), GeScalarMult(eight, b)));
}

TEST(Fe25519Test, Pow22523MatchesGenericPow) {
  // The addition chain for the decompression exponent 2^252 - 3 against the
  // generic square-and-multiply ladder.
  U256 e{0xFFFFFFFFFFFFFFFDULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
         0x0FFFFFFFFFFFFFFFULL};
  DeterministicRng rng(24);
  for (int i = 0; i < 5; ++i) {
    Fe a = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FePow22523(a), FePow(a, e))) << "iter " << i;
  }
}

TEST(Fe25519Test, InvertMatchesGenericPow) {
  // FeInvert's addition chain against a^(p-2) through FePow. p - 2 =
  // 2^255 - 21.
  U256 e{0xFFFFFFFFFFFFFFEBULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
         0x7FFFFFFFFFFFFFFFULL};
  DeterministicRng rng(25);
  for (int i = 0; i < 5; ++i) {
    Fe a = RandomFe(&rng);
    EXPECT_TRUE(FeEq(FeInvert(a), FePow(a, e))) << "iter " << i;
  }
}

// Random point distinct from the base point, for the vartime cross-checks.
GePoint RandomPoint(DeterministicRng* rng) {
  uint8_t wide[64], s[32];
  rng->FillBytes(wide, 64);
  ScReduce64(s, wide);
  return GeScalarMultBase(s);
}

TEST(Ge25519Test, ScalarMultVartimeMatchesTextbook) {
  DeterministicRng rng(26);
  GePoint p = RandomPoint(&rng);
  for (int i = 0; i < 10; ++i) {
    // Full 256-bit scalars, not just reduced ones: the w-NAF recoding must
    // agree with the plain ladder over the whole input domain.
    uint8_t s[32];
    rng.FillBytes(s, 32);
    EXPECT_TRUE(GeEq(GeScalarMultVartime(s, p), GeScalarMult(s, p))) << "iter " << i;
  }
  uint8_t zero[32] = {};
  EXPECT_TRUE(GeIsIdentity(GeScalarMultVartime(zero, p)));
  uint8_t one[32] = {};
  one[0] = 1;
  EXPECT_TRUE(GeEq(GeScalarMultVartime(one, p), p));
  uint8_t all_ff[32];
  memset(all_ff, 0xff, 32);
  EXPECT_TRUE(GeEq(GeScalarMultVartime(all_ff, p), GeScalarMult(all_ff, p)));
}

TEST(Ge25519Test, DoubleScalarMultVartimeMatchesComposition) {
  // [a]A + [b]B against the composed textbook computation, including the
  // degenerate scalar pairs that skip one side of the interleaving.
  DeterministicRng rng(27);
  for (int i = 0; i < 8; ++i) {
    GePoint A = RandomPoint(&rng);
    uint8_t a[32], b[32];
    rng.FillBytes(a, 32);
    rng.FillBytes(b, 32);
    if (i == 6) {
      memset(a, 0, 32);  // [0]A + [b]B: pure base-point table walk.
    }
    if (i == 7) {
      memset(b, 0, 32);  // [a]A + [0]B: pure odd-multiples walk.
    }
    GePoint expected = GeAdd(GeScalarMult(a, A), GeScalarMult(b, GeBasePoint()));
    EXPECT_TRUE(GeEq(GeDoubleScalarMultVartime(a, A, b), expected)) << "iter " << i;
  }
}

TEST(Ge25519Test, TwoScalarMultVartimeMatchesComposition) {
  DeterministicRng rng(28);
  for (int i = 0; i < 8; ++i) {
    GePoint A = RandomPoint(&rng);
    GePoint B = RandomPoint(&rng);
    uint8_t a[32], b[32];
    rng.FillBytes(a, 32);
    rng.FillBytes(b, 32);
    GePoint expected = GeAdd(GeScalarMult(a, A), GeScalarMult(b, B));
    EXPECT_TRUE(GeEq(GeTwoScalarMultVartime(a, A, b, B), expected)) << "iter " << i;
  }
}

}  // namespace
}  // namespace internal
}  // namespace algorand
