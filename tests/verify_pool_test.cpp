// Verification pipeline tests: the VerifyPool worker pool, the thread-safe
// VerificationCache it feeds, and the end-to-end property that matters for
// tier-1 determinism — a SimHarness run produces the identical chain with the
// pipeline off (workers = 0) and on (workers > 0), because prewarming only
// ever caches values the inline path would compute anyway.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/verify_pool.h"
#include "src/core/sim_harness.h"
#include "src/core/verification_cache.h"

namespace algorand {
namespace {

Hash256 Key(uint64_t i) {
  Hash256 h;
  for (size_t b = 0; b < 8; ++b) {
    h[b] = static_cast<uint8_t>(i >> (8 * b));
  }
  return h;
}

TEST(VerifyPoolTest, ZeroWorkersIsInert) {
  VerifyPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(ran.load(), 0);  // Submit is a no-op; the caller verifies inline.
}

TEST(VerifyPoolTest, RunsAllSubmittedJobs) {
  std::atomic<int> ran{0};
  {
    VerifyPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(ran.load(), 100);
    // Jobs submitted after a drain still run (destructor drains).
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 110);
}

TEST(VerifyPoolTest, ResolveWorkersPrefersExplicitConfig) {
  unsetenv("ALGORAND_VERIFY_WORKERS");
  EXPECT_EQ(ResolveVerifyWorkers(0), 0u);
  EXPECT_EQ(ResolveVerifyWorkers(4), 4u);
  EXPECT_EQ(ResolveVerifyWorkers(-1), 0u);  // No env, default single-threaded.
  setenv("ALGORAND_VERIFY_WORKERS", "2", 1);
  EXPECT_EQ(ResolveVerifyWorkers(-1), 2u);  // Env fills in the default...
  EXPECT_EQ(ResolveVerifyWorkers(0), 0u);   // ...but never overrides config.
  setenv("ALGORAND_VERIFY_WORKERS", "junk", 1);
  EXPECT_EQ(ResolveVerifyWorkers(-1), 0u);
  unsetenv("ALGORAND_VERIFY_WORKERS");
}

TEST(VerificationCacheTest, ComputesOncePerKey) {
  VerificationCache cache;
  int computes = 0;
  EXPECT_EQ(cache.GetOrCompute(Key(1), [&] {
    ++computes;
    return uint64_t{7};
  }),
            7u);
  EXPECT_EQ(cache.GetOrCompute(Key(1), [&] {
    ++computes;
    return uint64_t{99};
  }),
            7u);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(VerificationCacheTest, PrewarmServesLaterLookups) {
  VerificationCache cache;
  EXPECT_FALSE(cache.Contains(Key(5)));
  cache.Prewarm(Key(5), [] { return uint64_t{42}; });
  EXPECT_TRUE(cache.Contains(Key(5)));
  EXPECT_EQ(cache.prewarms(), 1u);
  // Re-prewarming an existing entry is a no-op.
  cache.Prewarm(Key(5), [] { return uint64_t{0}; });
  EXPECT_EQ(cache.prewarms(), 1u);
  int computes = 0;
  EXPECT_EQ(cache.GetOrCompute(Key(5), [&] {
    ++computes;
    return uint64_t{0};
  }),
            42u);
  EXPECT_EQ(computes, 0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(VerificationCacheTest, NoteRoundPrunesStaleEntries) {
  VerificationCache cache;
  cache.NoteRound(1);
  cache.Prewarm(Key(10), [] { return uint64_t{1}; });
  cache.NoteRound(2);
  cache.Prewarm(Key(20), [] { return uint64_t{2}; });
  EXPECT_EQ(cache.size(), 2u);
  // kKeepRounds = 2: at round 4 the round-1 entry ages out, round-2 survives.
  cache.NoteRound(4);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Contains(Key(10)));
  EXPECT_TRUE(cache.Contains(Key(20)));
  EXPECT_EQ(cache.pruned(), 1u);
  // Touching an entry refreshes its round stamp.
  cache.GetOrCompute(Key(20), [] { return uint64_t{0}; });
  cache.NoteRound(6);
  EXPECT_TRUE(cache.Contains(Key(20)));
  cache.NoteRound(10);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerificationCacheTest, ConcurrentPrewarmAndLookupComputeOnce) {
  // Hammer the cache from a pool and the "protocol thread" at once: every
  // key must be computed exactly once and every lookup must see that value.
  VerificationCache cache;
  constexpr int kKeys = 200;
  std::vector<std::atomic<int>> computes(kKeys);
  {
    VerifyPool pool(4);
    for (int k = 0; k < kKeys; ++k) {
      pool.Submit([&cache, &computes, k] {
        cache.Prewarm(Key(static_cast<uint64_t>(k)), [&computes, k] {
          computes[static_cast<size_t>(k)].fetch_add(1);
          return static_cast<uint64_t>(k) * 3 + 1;
        });
      });
    }
    for (int k = 0; k < kKeys; ++k) {
      uint64_t v =
          cache.GetOrCompute(Key(static_cast<uint64_t>(k)), [&computes, k] {
            computes[static_cast<size_t>(k)].fetch_add(1);
            return static_cast<uint64_t>(k) * 3 + 1;
          });
      EXPECT_EQ(v, static_cast<uint64_t>(k) * 3 + 1);
    }
    pool.Drain();
  }
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(computes[static_cast<size_t>(k)].load(), 1) << "key " << k;
  }
  EXPECT_EQ(cache.prewarms() + cache.misses(), static_cast<uint64_t>(kKeys));
}

// The pipeline must not change any protocol decision: the same seed with
// workers disabled and enabled yields byte-identical chains. Prewarming only
// warms the cache with values the inline path computes, and the simulated
// event sequence never depends on wall-clock worker timing.
TEST(VerifyPipelineTest, HarnessChainIsIdenticalWithAndWithoutWorkers) {
  auto run = [](int workers) {
    HarnessConfig cfg;
    cfg.n_nodes = 12;
    cfg.rng_seed = 77;
    cfg.verify_workers = workers;
    cfg.use_sim_crypto = false;  // Exercise the real Ed25519/VRF pipeline.
    SimHarness harness(cfg);
    harness.Start();
    EXPECT_TRUE(harness.RunRounds(2, Seconds(600)));
    std::vector<Hash256> hashes;
    const Ledger& ledger = harness.node(0).ledger();
    for (uint64_t r = 0; r < ledger.chain_length(); ++r) {
      hashes.push_back(ledger.BlockAtRound(r).Hash());
    }
    return hashes;
  };
  std::vector<Hash256> without = run(0);
  std::vector<Hash256> with = run(2);
  ASSERT_GT(without.size(), 2u);
  ASSERT_EQ(without.size(), with.size());
  for (size_t r = 0; r < without.size(); ++r) {
    EXPECT_EQ(without[r], with[r]) << "round " << r;
  }
}

}  // namespace
}  // namespace algorand
