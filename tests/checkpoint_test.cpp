// Checkpoint + compaction tests at the store layer: payload round-trips,
// sidecar persistence and retention across reopen, segment GC below the
// oldest retained checkpoint (with the chain.log link extraction fast-sync
// depends on), fork-switch truncation above a pruned prefix, and the
// corruption fuzz — truncate and bit-flip every byte of a checkpoint file
// and require the load to yield exactly the original payload or nothing,
// with the WAL fallback intact either way.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/store/block_store.h"
#include "src/store/checkpoint.h"

namespace algorand {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "algorand_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<uint8_t> PatternBytes(uint64_t seed, size_t n) {
  std::vector<uint8_t> out(n);
  uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<uint8_t>(x);
  }
  return out;
}

StoredRound MakeRound(uint64_t round, size_t block_bytes = 64) {
  StoredRound r;
  r.round = round;
  r.kind = 0;  // Final: checkpoints only cover final history.
  std::vector<uint8_t> tip = PatternBytes(round ^ 0xf00d, 32);
  memcpy(r.tip_hash.data(), tip.data(), 32);
  std::vector<uint8_t> seed = PatternBytes(round ^ 0x5eed, 32);
  memcpy(r.next_seed.data(), seed.data(), 32);
  r.block = PatternBytes(round, block_bytes);
  r.cert = PatternBytes(round ^ 0xcafe, 16);
  return r;
}

StoreOptions SyncOptions(const std::string& dir) {
  StoreOptions opts;
  opts.dir = dir;
  opts.background_writer = false;
  opts.fsync = FsyncPolicy::kOff;
  return opts;
}

CheckpointData MakeCheckpointData(uint64_t round) {
  CheckpointData data;
  data.manifest.round = round;
  std::vector<uint8_t> tip = PatternBytes(round ^ 0xf00d, 32);
  memcpy(data.manifest.tip_hash.data(), tip.data(), 32);
  std::vector<uint8_t> fp = PatternBytes(round ^ 0xabba, 32);
  memcpy(data.manifest.fingerprint.data(), fp.data(), 32);
  data.manifest.highest_final = round + 1;
  std::vector<uint8_t> gh = PatternBytes(0x9e9e, 32);
  memcpy(data.manifest.genesis_hash.data(), gh.data(), 32);
  data.seed_base = round > 4 ? round - 4 : 0;
  for (uint64_t r = data.seed_base; r <= round; ++r) {
    SeedBytes s;
    std::vector<uint8_t> bytes = PatternBytes(r ^ 0x5eed, 32);
    memcpy(s.data(), bytes.data(), 32);
    data.seeds.push_back(s);
  }
  data.tip_block = PatternBytes(round ^ 0xb10c, 200);
  data.accounts = PatternBytes(round ^ 0xacc7, 500);
  return data;
}

TEST(CheckpointDataTest, RoundTripsAndParsesManifestPrefix) {
  CheckpointData data = MakeCheckpointData(12);
  std::vector<uint8_t> bytes = data.Serialize();

  auto parsed = CheckpointData::Deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->manifest.round, data.manifest.round);
  EXPECT_EQ(parsed->manifest.tip_hash, data.manifest.tip_hash);
  EXPECT_EQ(parsed->manifest.fingerprint, data.manifest.fingerprint);
  EXPECT_EQ(parsed->manifest.highest_final, data.manifest.highest_final);
  EXPECT_EQ(parsed->manifest.genesis_hash, data.manifest.genesis_hash);
  EXPECT_EQ(parsed->seed_base, data.seed_base);
  EXPECT_EQ(parsed->seeds, data.seeds);
  EXPECT_EQ(parsed->tip_block, data.tip_block);
  EXPECT_EQ(parsed->accounts, data.accounts);

  // The manifest parses from the fixed-size prefix alone (what the
  // fast-sync manifest response carries).
  std::vector<uint8_t> prefix(bytes.begin(),
                              bytes.begin() + CheckpointData::kManifestBytes);
  auto manifest = CheckpointData::ParseManifest(prefix);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->round, data.manifest.round);
  EXPECT_EQ(manifest->tip_hash, data.manifest.tip_hash);

  // Truncated below the manifest size: reject, don't guess.
  prefix.pop_back();
  EXPECT_FALSE(CheckpointData::ParseManifest(prefix).has_value());
  EXPECT_FALSE(CheckpointData::Deserialize(prefix).has_value());
}

TEST(CheckpointStoreTest, SidecarPersistsAcrossReopenAndRetainsNewest) {
  std::string dir = FreshDir("persist");
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 30; ++r) {
    store->AppendRound(MakeRound(r));
  }
  std::vector<uint8_t> payload10 = MakeCheckpointData(10).Serialize();
  std::vector<uint8_t> payload20 = MakeCheckpointData(20).Serialize();
  std::vector<uint8_t> payload30 = MakeCheckpointData(30).Serialize();
  store->AppendCheckpoint(10, [&] { return payload10; });
  store->AppendCheckpoint(20, [&] { return payload20; });
  store->AppendCheckpoint(30, [&] { return payload30; });
  store->Flush();

  // Default retention is 2: the round-10 file is gone, newest two remain.
  auto listed = store->checkpoints();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].round, 20u);
  EXPECT_EQ(listed[1].round, 30u);
  store.reset();

  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  listed = store->checkpoints();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[1].round, 30u);
  auto loaded = store->ReadCheckpointPayload(30);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(*loaded, payload30);
  EXPECT_EQ(store->ReadCheckpointPayload(10), nullptr);  // Pruned by retention.
}

TEST(CheckpointStoreTest, CompactionPrunesSegmentsAndKeepsChainLinks) {
  std::string dir = FreshDir("compact");
  StoreOptions opts = SyncOptions(dir);
  opts.segment_bytes = 512;  // Force frequent segment rolls.
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 40; ++r) {
    store->AppendRound(MakeRound(r));
    if (r == 20 || r == 30) {
      store->AppendCheckpoint(r, [r] { return MakeCheckpointData(r).Serialize(); });
    }
  }
  store->Flush();

  // Segments strictly below the oldest retained checkpoint (round 20) are
  // gone; the index serves retained rounds without scanning.
  uint64_t first = store->first_retained_round();
  EXPECT_GT(first, 1u);
  EXPECT_LE(first, 20u);
  EXPECT_FALSE(store->ReadRound(1).has_value());
  EXPECT_EQ(store->max_round(), 40u);
  for (uint64_t r = first; r <= 40; ++r) {
    ASSERT_TRUE(store->ReadRound(r).has_value()) << "round " << r;
  }
  // Every pruned round still serves its chain link (hash + cert), the
  // fast-sync currency: the block body is gone, the proof of it is not.
  for (uint64_t r = 1; r <= 40; ++r) {
    auto link = store->ChainLinkAt(r);
    ASSERT_TRUE(link.has_value()) << "round " << r;
    EXPECT_EQ(link->round, r);
    EXPECT_EQ(link->hash, MakeRound(r).tip_hash);
    EXPECT_EQ(link->next_seed, MakeRound(r).next_seed);
    EXPECT_EQ(link->cert, MakeRound(r).cert);
  }
  store.reset();

  // Reopen: replay primes at the first retained round (SEGSTART base frame)
  // instead of assuming round 1, and the links survive too.
  store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 40u);
  EXPECT_EQ(store->first_retained_round(), first);
  EXPECT_FALSE(store->ReadRound(1).has_value());
  ASSERT_TRUE(store->ChainLinkAt(1).has_value());
  EXPECT_EQ(store->ChainLinkAt(1)->cert, MakeRound(1).cert);
}

TEST(CheckpointStoreTest, TruncateAbovePrunedCheckpointSurvivesForkSwitch) {
  // Fork recovery truncates the suffix and re-streams a replacement — after
  // compaction has already pruned the prefix. The truncate must not disturb
  // the compacted base or the checkpoint files.
  std::string dir = FreshDir("forkswitch");
  StoreOptions opts = SyncOptions(dir);
  opts.segment_bytes = 512;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 30; ++r) {
    store->AppendRound(MakeRound(r));
    if (r == 10 || r == 20) {
      store->AppendCheckpoint(r, [r] { return MakeCheckpointData(r).Serialize(); });
    }
  }
  store->Flush();
  uint64_t first = store->first_retained_round();
  EXPECT_GT(first, 1u);

  store->TruncateSuffix(25);  // Fork switch at round 25 (above checkpoint 20).
  for (uint64_t r = 25; r <= 28; ++r) {
    StoredRound replacement = MakeRound(r ^ 0x4444, 64);
    replacement.round = r;
    store->AppendRound(std::move(replacement));
  }
  store->Flush();
  EXPECT_EQ(store->max_round(), 28u);
  store.reset();

  store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 28u);
  EXPECT_EQ(store->first_retained_round(), first);
  // The replacement suffix won; the checkpoints and pruned prefix survived.
  auto got = store->ReadRound(26);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->block, MakeRound(26 ^ 0x4444, 64).block);
  ASSERT_EQ(store->checkpoints().size(), 2u);
  EXPECT_NE(store->ReadCheckpointPayload(20), nullptr);
  EXPECT_FALSE(store->ReadRound(1).has_value());
  EXPECT_TRUE(store->ChainLinkAt(5).has_value());
}

// The corruption fuzz: every truncation length and every bit-flip of a
// checkpoint file must yield either the exact original payload or a clean
// refusal — never a partial or silently-different payload — and must leave
// the WAL rounds (the replay fallback) untouched.
class CheckpointCorruptionFuzz : public ::testing::Test {
 protected:
  void Build(const std::string& name) {
    dir_ = FreshDir(name);
    std::string error;
    auto store = BlockStore::Open(SyncOptions(dir_), &error);
    ASSERT_NE(store, nullptr) << error;
    for (uint64_t r = 1; r <= 12; ++r) {
      store->AppendRound(MakeRound(r));
    }
    payload_ = MakeCheckpointData(8).Serialize();
    store->AppendCheckpoint(8, [&] { return payload_; });
    store->Flush();
    auto listed = store->checkpoints();
    ASSERT_EQ(listed.size(), 1u);
    path_ = listed[0].path;
    store.reset();

    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in);
    original_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(original_.size(), CheckpointData::kManifestBytes);
  }

  void WriteFileBytes(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Opens the store and requires: checkpoint loads fully intact or not at
  // all, and the WAL fallback still holds every round.
  void ExpectIntactOrAbsent() {
    std::string error;
    auto store = BlockStore::Open(SyncOptions(dir_), &error);
    ASSERT_NE(store, nullptr) << error;  // A bad sidecar never fails Open.
    auto loaded = store->ReadCheckpointPayload(8);
    if (loaded != nullptr) {
      EXPECT_EQ(*loaded, payload_);
    }
    // Fallback intact: full WAL replay is still available bit-for-bit.
    EXPECT_EQ(store->max_round(), 12u);
    for (uint64_t r = 1; r <= 12; ++r) {
      auto got = store->ReadRound(r);
      ASSERT_TRUE(got.has_value()) << "round " << r;
      EXPECT_EQ(got->block, MakeRound(r).block);
      EXPECT_EQ(got->tip_hash, MakeRound(r).tip_hash);
    }
  }

  std::string dir_;
  std::string path_;
  std::vector<uint8_t> payload_;
  std::vector<char> original_;
};

TEST_F(CheckpointCorruptionFuzz, TruncationAtEveryLengthNeverLoadsPartially) {
  Build("fuzz_trunc");
  for (size_t len = 0; len < original_.size(); ++len) {
    WriteFileBytes(std::vector<char>(original_.begin(),
                                     original_.begin() + static_cast<long>(len)));
    {
      SCOPED_TRACE("truncated to " + std::to_string(len));
      ExpectIntactOrAbsent();
      // A truncated file is short of its declared payload length; it must
      // never load (the full-file case is exercised by len == size below).
      std::string error;
      auto store = BlockStore::Open(SyncOptions(dir_), &error);
      ASSERT_NE(store, nullptr);
      EXPECT_EQ(store->ReadCheckpointPayload(8), nullptr);
    }
  }
  WriteFileBytes(original_);  // And the pristine file still loads.
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir_), &error);
  ASSERT_NE(store, nullptr);
  auto loaded = store->ReadCheckpointPayload(8);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(*loaded, payload_);
}

TEST_F(CheckpointCorruptionFuzz, BitFlipAtEveryByteNeverLoadsSilently) {
  Build("fuzz_flip");
  for (size_t i = 0; i < original_.size(); ++i) {
    std::vector<char> mutated = original_;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    WriteFileBytes(mutated);
    SCOPED_TRACE("bit flipped at offset " + std::to_string(i));
    // Header magic/version/length/CRC flips refuse outright; payload flips
    // fail the CRC. Either way: no partial and no silently-different load.
    std::string error;
    auto store = BlockStore::Open(SyncOptions(dir_), &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->ReadCheckpointPayload(8), nullptr);
    EXPECT_EQ(store->max_round(), 12u);
  }
  WriteFileBytes(original_);
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir_), &error);
  ASSERT_NE(store, nullptr);
  ASSERT_NE(store->ReadCheckpointPayload(8), nullptr);
}

}  // namespace
}  // namespace algorand
