// Race test for SimMessage's memoized identity facets (WireSize, DedupId,
// EncodedWire, trace context). First use of a facet may race between the
// protocol thread, verification workers, and parallel-engine shards; the
// memo publishes through a tiny acquire/release once-state-machine per
// field. This test hammers cold messages from many concurrent readers so
// the TSan CI job can prove the publication is sound — and, annotations
// aside, that every racing reader observes the same frozen value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/netsim/message.h"

namespace algorand {
namespace {

// A message whose compute hooks do real multi-step work over heap state, so
// an unsynchronized read of a half-built value would be both a TSan report
// and a visible wrong answer.
class ScratchMessage : public SimMessage {
 public:
  explicit ScratchMessage(uint64_t seed) : seed_(seed) {
    payload_.resize(256);
    for (size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = static_cast<uint8_t>(seed >> (i % 8));
    }
  }

  const char* TypeName() const override { return "scratch"; }

  static std::atomic<uint64_t> compute_calls;

 protected:
  uint64_t ComputeWireSize() const override {
    compute_calls.fetch_add(1, std::memory_order_relaxed);
    uint64_t sum = 0;
    for (uint8_t b : payload_) {
      sum = sum * 31 + b;
    }
    return 64 + (sum % 1024);
  }

  Hash256 ComputeDedupId() const override {
    compute_calls.fetch_add(1, std::memory_order_relaxed);
    Hash256 h;
    uint64_t acc = seed_;
    for (size_t i = 0; i < h.size(); ++i) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
      h[i] = static_cast<uint8_t>(acc >> 56);
    }
    return h;
  }

 private:
  friend std::vector<uint8_t> EncodeScratch(const SimMessage& msg);
  uint64_t seed_;
  std::vector<uint8_t> payload_;
};

std::atomic<uint64_t> ScratchMessage::compute_calls{0};

std::vector<uint8_t> EncodeScratch(const SimMessage& msg) {
  const auto& m = static_cast<const ScratchMessage&>(msg);
  std::vector<uint8_t> out(1 + m.payload_.size());
  out[0] = 0x5c;
  for (size_t i = 0; i < m.payload_.size(); ++i) {
    out[1 + i] = m.payload_[i];
  }
  return out;
}

TEST(MessageMemoRaceTest, ConcurrentFirstUseFreezesOneValue) {
  constexpr int kRounds = 200;
  constexpr int kThreads = 8;
  for (int round = 0; round < kRounds; ++round) {
    auto msg = std::make_shared<const ScratchMessage>(0x9e3779b97f4a7c15ULL + round);
    // Reference values from a private warm copy (same content, no sharing).
    ScratchMessage ref(0x9e3779b97f4a7c15ULL + round);
    const uint64_t want_size = ref.WireSize();
    const Hash256 want_id = ref.DedupId();
    const std::vector<uint8_t> want_wire = ref.EncodedWire(&EncodeScratch);

    std::atomic<int> start{0};
    std::vector<std::thread> pool;
    std::vector<int> bad(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        start.fetch_add(1, std::memory_order_relaxed);
        while (start.load(std::memory_order_relaxed) < kThreads) {
          // Spin: maximize the chance every thread hits the cold facets at
          // the same instant.
        }
        for (int i = 0; i < 16; ++i) {
          if (msg->WireSize() != want_size) {
            ++bad[t];
          }
          if (msg->DedupId() != want_id) {
            ++bad[t];
          }
          if (msg->EncodedWire(&EncodeScratch) != want_wire) {
            ++bad[t];
          }
          msg->StampTraceContext(static_cast<uint32_t>(t), 1000 + static_cast<uint64_t>(t));
          const TraceContext& tc = msg->trace_context();
          // Whoever won the stamp race, the result must be internally
          // consistent (origin and timestamp from the same writer) and frozen.
          if (tc.stamped() && tc.emitted_at != 1000 + tc.origin) {
            ++bad[t];
          }
        }
      });
    }
    for (auto& th : pool) {
      th.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(bad[t], 0) << "round " << round << " thread " << t;
    }
    // The stamp is set by now; later stamps must not overwrite it.
    const TraceContext frozen = msg->trace_context();
    ASSERT_TRUE(frozen.stamped());
    msg->StampTraceContext(77777, 1);
    EXPECT_EQ(msg->trace_context().origin, frozen.origin);
    EXPECT_EQ(msg->trace_context().emitted_at, frozen.emitted_at);
  }
}

TEST(MessageMemoRaceTest, EachFacetComputesAtMostOncePerMessage) {
  ScratchMessage::compute_calls.store(0, std::memory_order_relaxed);
  auto msg = std::make_shared<const ScratchMessage>(42);
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        (void)msg->WireSize();
        (void)msg->DedupId();
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  // The once-discipline: one compute per facet no matter how many racing
  // readers (2 facets with compute hooks instrumented here).
  EXPECT_EQ(ScratchMessage::compute_calls.load(std::memory_order_relaxed), 2u);
}

TEST(MessageMemoRaceTest, CopyAssignResetsTheCache) {
  ScratchMessage a(1);
  ScratchMessage b(2);
  const Hash256 id_b = b.DedupId();
  (void)b.WireSize();
  (void)a.WireSize();
  b = a;  // Content changed: b's frozen identity must be recomputed.
  EXPECT_EQ(b.WireSize(), a.WireSize());
  EXPECT_EQ(b.DedupId(), a.DedupId());
  EXPECT_NE(b.DedupId(), id_b);
}

}  // namespace
}  // namespace algorand
