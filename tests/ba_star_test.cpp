// Unit tests for the BA* state machine, driven by a fake environment with
// synthetic votes (no network, no sortition).
#include <gtest/gtest.h>

#include <vector>

#include "src/core/ba_star.h"
#include "src/core/vote_counter.h"
#include "src/netsim/simulation.h"

namespace algorand {
namespace {

struct FakeEnv : BaEnvironment {
  struct Cast {
    uint32_t step;
    double tau;
    Hash256 value;
  };

  void CastVote(uint32_t step_code, double tau, const Hash256& value) override {
    casts.push_back({step_code, tau, value});
  }
  void ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    sim.Schedule(delay, std::move(fn));
  }
  SimTime Now() const override { return sim.now(); }

  bool DidCast(uint32_t step, const Hash256& value) const {
    for (const Cast& c : casts) {
      if (c.step == step && c.value == value) {
        return true;
      }
    }
    return false;
  }

  Simulation sim;
  std::vector<Cast> casts;
};

PublicKey Pk(int i) {
  PublicKey pk;
  pk[0] = static_cast<uint8_t>(i);
  pk[1] = static_cast<uint8_t>(i >> 8);
  return pk;
}

VrfOutput Sorthash(int i) {
  VrfOutput h;
  h[0] = static_cast<uint8_t>(i * 37 + 1);
  h[5] = static_cast<uint8_t>(i);
  return h;
}

// Small committees keep thresholds tiny: tau_step = 10, T = 0.685 -> need
// weighted votes > 6.85 (i.e. 7). tau_final = 20, T_final = 0.74 -> > 14.8.
ProtocolParams TestParams() {
  ProtocolParams p = ProtocolParams::Paper();
  p.tau_step = 10;
  p.tau_final = 20;
  p.max_steps = 9;
  return p;
}

struct BaFixture {
  BaFixture() : params(TestParams()) {
    ba = std::make_unique<BaStar>(params, &env, [this](const BaResult& r) {
      completed = true;
      result = r;
    });
    block[0] = 0xaa;
    empty[0] = 0xee;
  }

  // Feeds `n` unit-weight votes for `value` in `step`.
  void Votes(uint32_t step, const Hash256& value, int n, int first_voter = 0) {
    for (int i = 0; i < n; ++i) {
      ba->OnVote(step, Pk(first_voter + i), 1, value, Sorthash(first_voter + i));
    }
  }

  ProtocolParams params;
  FakeEnv env;
  std::unique_ptr<BaStar> ba;
  bool completed = false;
  BaResult result;
  Hash256 block, empty;
};

TEST(BaStarTest, HappyPathReachesFinalConsensus) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  // Committee votes arrive for reduction step 1 and 2, then binary step 1,
  // then the final step.
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  f.Votes(BinaryStepCode(1), f.block, 8);
  f.Votes(kStepFinal, f.block, 16);
  ASSERT_TRUE(f.completed);
  EXPECT_EQ(f.result.value, f.block);
  EXPECT_TRUE(f.result.final);
  EXPECT_FALSE(f.result.hung);
  EXPECT_EQ(f.result.binary_steps, 1);
  EXPECT_EQ(f.result.deciding_step, BinaryStepCode(1));
}

TEST(BaStarTest, CastsOwnVotesPerStep) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  EXPECT_TRUE(f.env.DidCast(kStepReduction1, f.block));
  f.Votes(kStepReduction1, f.block, 8);
  EXPECT_TRUE(f.env.DidCast(kStepReduction2, f.block));
  f.Votes(kStepReduction2, f.block, 8);
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(1), f.block));
}

TEST(BaStarTest, ConsensusInFirstStepTriggersFinalVoteAndVoteAhead) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  f.Votes(BinaryStepCode(1), f.block, 8);
  // Vote-ahead for the next three steps plus the special final vote.
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(2), f.block));
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(3), f.block));
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(4), f.block));
  EXPECT_TRUE(f.env.DidCast(kStepFinal, f.block));
}

TEST(BaStarTest, ConsensusBeyondFirstStepIsNeverFinal) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  // Step 1 times out; step 2... timeouts roll r to block_hash then empty.
  // Feed step 4 (a new step A: steps are 1=A,2=B,3=C,4=A) with block votes.
  // Steps time out at 20 s, 40 s, 60 s; at 61 s the machine sits in step 4.
  f.env.sim.RunUntil(Seconds(61));
  f.Votes(BinaryStepCode(4), f.block, 8);
  // Even with enough final votes the result must be tentative: the final
  // vote is only cast from binary step 1.
  f.Votes(kStepFinal, f.block, 16);
  ASSERT_TRUE(f.completed);
  EXPECT_EQ(f.result.value, f.block);
  EXPECT_TRUE(f.result.final);  // Final votes did arrive (cast by others).
  EXPECT_GT(f.result.binary_steps, 1);
}

TEST(BaStarTest, NoFinalVotesMeansTentative) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  f.Votes(BinaryStepCode(1), f.block, 8);
  EXPECT_FALSE(f.completed);       // Waiting on the final-step count.
  f.env.sim.RunUntil(Minutes(5));  // Final step times out.
  ASSERT_TRUE(f.completed);
  EXPECT_EQ(f.result.value, f.block);
  EXPECT_FALSE(f.result.final);
}

TEST(BaStarTest, FinalVotesForDifferentValueMeansTentative) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  f.Votes(BinaryStepCode(1), f.block, 8);
  f.Votes(kStepFinal, f.empty, 16);  // Final quorum on a different value.
  ASSERT_TRUE(f.completed);
  EXPECT_FALSE(f.result.final);
}

TEST(BaStarTest, ReductionTimeoutFallsBackToEmpty) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  // Nobody votes in reduction step 1: after the timeout the machine must
  // vote for the empty hash in reduction step 2.
  f.env.sim.RunUntil(f.params.lambda_block + f.params.lambda_step + Seconds(1));
  EXPECT_TRUE(f.env.DidCast(kStepReduction2, f.empty));
}

TEST(BaStarTest, ConsensusOnEmptyInStepB) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.empty, 8);
  f.Votes(kStepReduction2, f.empty, 8);
  // Binary step 1 (A): empty crosses threshold -> no return, moves to B.
  f.Votes(BinaryStepCode(1), f.empty, 8);
  // Step 2 (B): empty again -> return empty.
  f.Votes(BinaryStepCode(2), f.empty, 8);
  f.env.sim.RunUntil(Minutes(5));  // Final count times out.
  ASSERT_TRUE(f.completed);
  EXPECT_EQ(f.result.value, f.empty);
  EXPECT_FALSE(f.result.final);
  EXPECT_EQ(f.result.binary_steps, 2);
  EXPECT_EQ(f.result.deciding_step, BinaryStepCode(2));
}

TEST(BaStarTest, HangsAfterMaxStepsWithoutVotes) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.env.sim.RunUntil(Hours(2));  // Everything times out, all steps consumed.
  ASSERT_TRUE(f.completed);
  EXPECT_TRUE(f.result.hung);
  EXPECT_GE(f.result.binary_steps, f.params.max_steps - 1);
}

TEST(BaStarTest, EarlyVotesBufferUntilStepEntered) {
  BaFixture f;
  // All votes arrive before Start (e.g. this node lagged behind).
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  f.Votes(BinaryStepCode(1), f.block, 8);
  f.Votes(kStepFinal, f.block, 16);
  EXPECT_FALSE(f.completed);
  f.ba->Start(f.block, f.empty);
  ASSERT_TRUE(f.completed);
  EXPECT_TRUE(f.result.final);
  EXPECT_EQ(f.result.value, f.block);
}

TEST(BaStarTest, DuplicateVotersCountedOnce) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  // Seven votes from the same pk must not cross the 6.85 threshold.
  for (int i = 0; i < 7; ++i) {
    f.ba->OnVote(kStepReduction1, Pk(1), 1, f.block, Sorthash(1));
  }
  EXPECT_FALSE(f.completed);
  const StepTally* tally = f.ba->TallyFor(kStepReduction1);
  ASSERT_NE(tally, nullptr);
  EXPECT_EQ(tally->CountFor(f.block), 1u);
}

TEST(BaStarTest, WeightedVotesCountWithMultiplicity) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  // One committee member selected 7 times crosses the threshold alone.
  f.ba->OnVote(kStepReduction1, Pk(1), 7, f.block, Sorthash(1));
  const StepTally* tally = f.ba->TallyFor(kStepReduction1);
  EXPECT_EQ(tally->CountFor(f.block), 7u);
  ASSERT_FALSE(f.completed);
  f.ba->OnVote(kStepReduction1, Pk(2), 1, f.block, Sorthash(2));
  EXPECT_TRUE(f.env.DidCast(kStepReduction2, f.block));
}

TEST(BaStarTest, TimeoutInStepAVotesCandidateNext) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  // Binary step 1 times out: per Algorithm 8 the next vote is block_hash.
  f.env.sim.RunUntil(f.env.sim.now() + f.params.lambda_step + Seconds(1));
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(2), f.block));
}

TEST(BaStarTest, TimeoutInStepBVotesEmptyNext) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  f.env.sim.RunUntil(Hours(1));  // Time out steps A then B then C...
  // After B's timeout the machine votes empty in step C.
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(3), f.empty));
}

TEST(BaStarTest, CoinStepFollowsCommonCoin) {
  BaFixture f;
  f.ba->Start(f.block, f.empty);
  f.Votes(kStepReduction1, f.block, 8);
  f.Votes(kStepReduction2, f.block, 8);
  // Let step A and B time out, then feed step C (code 3) with a single
  // below-threshold vote whose sorthash determines the coin.
  SimTime t0 = f.env.sim.now();
  f.env.sim.RunUntil(t0 + 2 * f.params.lambda_step + Seconds(1));  // A, B timed out.
  VrfOutput coin_hash = Sorthash(42);
  f.ba->OnVote(BinaryStepCode(3), Pk(42), 1, f.block, coin_hash);
  // Compute the expected coin from a mirror tally.
  StepTally mirror;
  mirror.AddVote(Pk(42), 1, f.block, coin_hash);
  int coin = mirror.CommonCoin();
  f.env.sim.RunUntil(f.env.sim.now() + f.params.lambda_step + Seconds(1));  // C times out.
  const Hash256 expected = coin == 0 ? f.block : f.empty;
  EXPECT_TRUE(f.env.DidCast(BinaryStepCode(4), expected));
}

}  // namespace
}  // namespace algorand
