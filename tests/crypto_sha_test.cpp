// Known-answer and property tests for the from-scratch SHA-256 / SHA-512.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"

namespace algorand {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Hash("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Hash("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  // NIST FIPS 180-4 example vector.
  EXPECT_EQ(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(h.Finish().ToHex(), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha512Test, EmptyString) {
  EXPECT_EQ(Sha512::Hash("").ToHex(),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  EXPECT_EQ(Sha512::Hash("abc").ToHex(),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, TwoBlockMessage) {
  EXPECT_EQ(Sha512::Hash("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                         "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")
                .ToHex(),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, MillionA) {
  Sha512 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(h.Finish().ToHex(),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

// Incremental hashing must agree with one-shot hashing across all chunkings.
class ShaIncrementalTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShaIncrementalTest, Sha256ChunkedMatchesOneShot) {
  std::string msg;
  for (int i = 0; i < 500; ++i) {
    msg.push_back(static_cast<char>('a' + (i % 26)));
  }
  size_t chunk = GetParam();
  Sha256 h;
  for (size_t i = 0; i < msg.size(); i += chunk) {
    h.Update(std::string_view(msg).substr(i, chunk));
  }
  EXPECT_EQ(h.Finish(), Sha256::Hash(msg));
}

TEST_P(ShaIncrementalTest, Sha512ChunkedMatchesOneShot) {
  std::string msg;
  for (int i = 0; i < 700; ++i) {
    msg.push_back(static_cast<char>('A' + (i % 26)));
  }
  size_t chunk = GetParam();
  Sha512 h;
  for (size_t i = 0; i < msg.size(); i += chunk) {
    h.Update(std::string_view(msg).substr(i, chunk));
  }
  EXPECT_EQ(h.Finish(), Sha512::Hash(msg));
}

INSTANTIATE_TEST_SUITE_P(Chunkings, ShaIncrementalTest,
                         ::testing::Values(1, 3, 7, 55, 56, 63, 64, 65, 111, 112, 127, 128, 129,
                                           256));

// Boundary lengths around the padding edge cases.
class ShaPaddingBoundaryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShaPaddingBoundaryTest, DigestsDifferAtAdjacentLengths) {
  size_t n = GetParam();
  std::string a(n, 'x');
  std::string b(n + 1, 'x');
  EXPECT_NE(Sha256::Hash(a), Sha256::Hash(b));
  EXPECT_NE(Sha512::Hash(a), Sha512::Hash(b));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, ShaPaddingBoundaryTest,
                         ::testing::Values(0, 54, 55, 56, 57, 63, 64, 65, 110, 111, 112, 113, 119,
                                           127, 128, 129));

TEST(ShaTest, DistinctInputsDistinctDigests) {
  // Tiny sanity sweep: 200 distinct short strings, no collisions.
  std::vector<Hash256> seen;
  for (int i = 0; i < 200; ++i) {
    seen.push_back(Sha256::Hash("input-" + std::to_string(i)));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace algorand
