// Unit tests for the conservative-lookahead parallel engine
// (src/netsim/parallel_simulation.h), the aggregate-user model's
// distributional fidelity (src/core/user_group.h), and the mutex-striped
// sortition CDF cache. sim_determinism_test covers the end-to-end
// workers=1-vs-N contract on full consensus runs; this file pins the
// engine-level mechanics those runs rely on.
#include <gtest/gtest.h>

#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/sortition.h"
#include "src/netsim/parallel_simulation.h"

namespace algorand {
namespace {

// ---------------------------------------------------------------------------
// Engine mechanics.

TEST(ParallelSimTest, ExecutesInTimestampOrderWithinStream) {
  ParallelSimulation sim(/*workers=*/1, /*n_streams=*/1, /*lookahead=*/100);
  std::vector<std::pair<SimTime, int>> log;
  sim.SetExternalStream(0);
  sim.ScheduleAtForStream(50, 0, [&] { log.emplace_back(sim.now(), 3); });
  sim.ScheduleAtForStream(10, 0, [&] { log.emplace_back(sim.now(), 1); });
  sim.ScheduleAtForStream(30, 0, [&] { log.emplace_back(sim.now(), 2); });
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<SimTime, int>{10, 1}));
  EXPECT_EQ(log[1], (std::pair<SimTime, int>{30, 2}));
  EXPECT_EQ(log[2], (std::pair<SimTime, int>{50, 3}));
  EXPECT_EQ(sim.executed_events(), 3u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ParallelSimTest, PastSchedulesClampToNow) {
  ParallelSimulation sim(1, 1, 100);
  sim.SetExternalStream(0);
  SimTime seen = -1;
  sim.ScheduleAtForStream(500, 0, [&] {
    // Inside the event, "now" is 500; a schedule into the past must clamp.
    sim.ScheduleAtForStream(3, 0, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 500);
}

TEST(ParallelSimTest, RunUntilLeavesLaterEventsAndAdvancesClock) {
  ParallelSimulation sim(1, 1, 100);
  sim.SetExternalStream(0);
  int ran = 0;
  sim.ScheduleAtForStream(500, 0, [&] { ++ran; });
  sim.RunUntil(200);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.now(), 200);  // Clock reaches the deadline even when idle.
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(1000);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(ParallelSimTest, StepRunsOneConservativeWindow) {
  constexpr SimTime kLook = 100;
  ParallelSimulation sim(/*workers=*/2, /*n_streams=*/2, kLook);
  int first_window = 0;
  int second_window = 0;
  sim.SetExternalStream(0);
  sim.ScheduleAtForStream(10, 0, [&] { ++first_window; });
  sim.SetExternalStream(1);
  sim.ScheduleAtForStream(20, 1, [&] { ++first_window; });  // Same [10,109] window.
  sim.ScheduleAtForStream(10 + 5 * kLook, 1, [&] { ++second_window; });
  sim.SetExternalStream(Simulation::kGlobalStream);

  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(first_window, 2);
  EXPECT_EQ(second_window, 0);
  EXPECT_EQ(sim.windows(), 1u);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(second_window, 1);
  EXPECT_FALSE(sim.Step());  // Drained.
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(ParallelSimTest, StopHaltsAtTheNextBarrier) {
  constexpr SimTime kLook = 100;
  ParallelSimulation sim(1, 1, kLook);
  sim.SetExternalStream(0);
  int ran = 0;
  sim.ScheduleAtForStream(10, 0, [&] {
    ++ran;
    sim.Stop();
  });
  sim.ScheduleAtForStream(10 + 5 * kLook, 0, [&] { ++ran; });  // A later window.
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();  // Run() clears the stop flag and resumes.
  EXPECT_EQ(ran, 2);
}

TEST(ParallelSimTest, GlobalEventsRunAtBarriersBetweenStreamEvents) {
  // A global-stream event must observe every same-or-earlier stream event
  // completed (even at an equal timestamp: node streams order before the
  // global stream), and runs with the clock set to its own timestamp. The
  // two stream events live on different shards and may run concurrently, so
  // each writes only its own flag; the barrier's synchronization makes both
  // flags visible to the coordinator-run global event.
  constexpr SimTime kLook = 100;
  ParallelSimulation sim(/*workers=*/2, /*n_streams=*/2, kLook);
  bool done0 = false;
  bool done1 = false;
  sim.SetExternalStream(0);
  sim.ScheduleAtForStream(10, 0, [&] { done0 = true; });
  sim.SetExternalStream(1);
  sim.ScheduleAtForStream(40, 1, [&] { done1 = true; });
  sim.SetExternalStream(Simulation::kGlobalStream);
  bool saw_both = false;
  SimTime global_now = -1;
  sim.ScheduleAt(40, [&] {
    saw_both = done0 && done1;
    global_now = sim.now();
  });
  sim.Run();
  EXPECT_TRUE(saw_both);
  EXPECT_EQ(global_now, 40);
  EXPECT_EQ(sim.executed_events(), 3u);
}

// The synthetic ping workload used for the worker-invariance checks: each
// stream hops a token around the ring (cross-shard for any workers >= 2,
// arrival exactly lookahead later — the minimum legal delay) and drops a
// same-stream echo event inside the current window. Per-stream logs are safe
// to write concurrently because one stream's events execute on exactly one
// shard, sequentially.
struct PingRun {
  std::vector<std::vector<std::pair<SimTime, uint32_t>>> logs;
  uint64_t executed = 0;
  uint64_t windows = 0;
  uint64_t cross_shard = 0;
  std::vector<std::pair<std::string, uint64_t>> stats;
};

PingRun RunPingWorkload(size_t workers) {
  constexpr uint32_t kStreams = 6;
  constexpr SimTime kLook = 100;
  ParallelSimulation sim(workers, kStreams, kLook);
  PingRun out;
  out.logs.resize(kStreams);
  std::function<void(uint32_t, uint32_t, int)> hop = [&](uint32_t at, uint32_t from, int hops) {
    out.logs[at].emplace_back(sim.now(), from);
    if (hops == 0) {
      return;
    }
    const uint32_t next = (at + 1) % kStreams;
    sim.ScheduleAtForStream(sim.now() + kLook, next,
                            [&hop, next, at, hops] { hop(next, at, hops - 1); });
    sim.ScheduleAtForStream(sim.now() + 1, at,
                            [&out, &sim, at] { out.logs[at].emplace_back(sim.now(), 1000 + at); });
  };
  for (uint32_t i = 0; i < kStreams; ++i) {
    sim.SetExternalStream(i);
    sim.ScheduleAtForStream(1 + i, i, [&hop, i] { hop(i, i, 8); });
  }
  sim.SetExternalStream(Simulation::kGlobalStream);
  sim.Run();
  out.executed = sim.executed_events();
  out.windows = sim.windows();
  out.cross_shard = sim.cross_shard_events();
  out.stats = sim.EngineStats();
  return out;
}

TEST(ParallelSimTest, WorkerCountDoesNotChangeExecution) {
  PingRun one = RunPingWorkload(1);
  for (size_t workers : {2u, 3u, 4u}) {
    PingRun many = RunPingWorkload(workers);
    EXPECT_EQ(one.executed, many.executed) << "workers=" << workers;
    EXPECT_EQ(one.windows, many.windows) << "workers=" << workers;
    EXPECT_EQ(one.logs, many.logs) << "workers=" << workers;
    // Ring hops cross shard boundaries whenever there is more than one shard.
    EXPECT_GT(many.cross_shard, 0u) << "workers=" << workers;
  }
  EXPECT_EQ(one.cross_shard, 0u);  // Single shard: nothing to exchange.
  EXPECT_GT(one.executed, 0u);
}

TEST(ParallelSimTest, EngineStatsAccountForEveryEvent) {
  PingRun r = RunPingWorkload(4);
  uint64_t windows = 0, cross = 0, globals = 0, worker_events = 0;
  size_t worker_rows = 0;
  for (const auto& [k, v] : r.stats) {
    if (k == "sim.windows") {
      windows = v;
    } else if (k == "sim.cross_shard_events") {
      cross = v;
    } else if (k == "sim.global_events") {
      globals = v;
    } else if (k.size() > 7 && k.compare(k.size() - 7, 7, ".events") == 0) {
      worker_events += v;
      ++worker_rows;
    }
  }
  EXPECT_EQ(windows, r.windows);
  EXPECT_EQ(cross, r.cross_shard);
  EXPECT_EQ(worker_rows, 4u);  // One ".events" row per shard.
  // Per-worker counters plus barrier-run globals account for every event.
  EXPECT_EQ(worker_events + globals, r.executed);
}

// ---------------------------------------------------------------------------
// Aggregate-user fidelity (UserGroupNode's stake-additivity claim).

VrfOutput RandomVrfOutput(DeterministicRng* rng) {
  VrfOutput h;
  for (size_t i = 0; i < h.size(); i += 8) {
    uint64_t v = rng->NextU64();
    for (size_t b = 0; b < 8; ++b) {
      h[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  return h;
}

TEST(UserAggregationTest, GroupStakeDrawsMatchIndependentUserDraws) {
  // The §5.1 sub-user model makes sortition Binomial over weight, so one node
  // holding K users' stake must draw committee seats with the distribution of
  // K independent users: Binomial(K*s, p) == sum of K Binomial(s, p). Compare
  // the sample mean and variance of both configurations over many VRF draws.
  constexpr uint64_t kUserStake = 100;
  constexpr uint64_t kUsersPerGroup = 50;
  constexpr double kP = 0.002;  // tau / W in a typical committee config.
  constexpr int kTrials = 2000;
  const double expect_mean = static_cast<double>(kUserStake * kUsersPerGroup) * kP;

  DeterministicRng rng(2026);
  double agg_sum = 0, agg_sq = 0, split_sum = 0, split_sq = 0;
  for (int t = 0; t < kTrials; ++t) {
    const double agg = static_cast<double>(
        SelectSubUsers(RandomVrfOutput(&rng), kUserStake * kUsersPerGroup, kP));
    uint64_t split = 0;
    for (uint64_t u = 0; u < kUsersPerGroup; ++u) {
      split += SelectSubUsers(RandomVrfOutput(&rng), kUserStake, kP);
    }
    agg_sum += agg;
    agg_sq += agg * agg;
    split_sum += static_cast<double>(split);
    split_sq += static_cast<double>(split) * static_cast<double>(split);
  }
  const double agg_mean = agg_sum / kTrials;
  const double split_mean = split_sum / kTrials;
  const double agg_var = agg_sq / kTrials - agg_mean * agg_mean;
  const double split_var = split_sq / kTrials - split_mean * split_mean;

  // Mean of Binomial(5000, 0.002) is 10, sd of the sample mean ~0.07; a 0.4
  // tolerance is > 5 sigma and the run is seed-deterministic besides.
  EXPECT_NEAR(agg_mean, expect_mean, 0.4);
  EXPECT_NEAR(split_mean, expect_mean, 0.4);
  EXPECT_NEAR(agg_mean, split_mean, 0.5);
  // Variances match to sampling noise (theoretical ~9.98 for both shapes).
  const double expect_var = expect_mean * (1.0 - kP);
  EXPECT_NEAR(agg_var, expect_var, expect_var * 0.15);
  EXPECT_NEAR(split_var, expect_var, expect_var * 0.15);
}

// ---------------------------------------------------------------------------
// Striped sortition CDF cache.

TEST(SortitionCdfCacheTest, StatsStayCoherentUnderConcurrentLookups) {
  const SortitionCdfCacheStats before = GetSortitionCdfCacheStats();
  constexpr int kThreads = 8;
  constexpr int kLookupsPerThread = 4000;
  constexpr double kP = 0.0005;
  std::vector<std::thread> pool;
  std::vector<uint64_t> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &failures] {
      DeterministicRng rng(9000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kLookupsPerThread; ++i) {
        // A handful of hot weights (cache hits from many threads at once)
        // plus a per-thread cold weight (misses + insertions racing).
        const uint64_t weight = (i % 4 == 0) ? 1000 + static_cast<uint64_t>(t * 7 + i)
                                             : 100 * (1 + static_cast<uint64_t>(i % 3));
        const VrfOutput h = RandomVrfOutput(&rng);
        if (SelectSubUsers(h, weight, kP) != SelectSubUsersUncached(h, weight, kP)) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0u) << "thread " << t << " saw cached != uncached";
  }
  const SortitionCdfCacheStats after = GetSortitionCdfCacheStats();
  const uint64_t calls = static_cast<uint64_t>(kThreads) * kLookupsPerThread;
  // Every lookup is exactly one hit or one miss — the striped counters must
  // account for all of them with none double-counted.
  EXPECT_EQ((after.hits - before.hits) + (after.misses - before.misses), calls);
  EXPECT_GT(after.hits, before.hits);    // The hot weights repeat.
  EXPECT_GT(after.misses, before.misses);  // The cold weights do not.
  EXPECT_LE(after.entries, 256u);        // Global capacity across stripes.
}

}  // namespace
}  // namespace algorand
