// Adversarial certificate tests: forged votes, non-committee voters,
// duplicate voters, threshold boundaries (§8.3).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/certificate.h"

namespace algorand {
namespace {

const Ed25519Signer kSigner;
const SimVrf kVrf;  // Deterministic and cheap; certificate logic is the same.

struct CertFixture {
  CertFixture() {
    DeterministicRng rng(1234, "cert-keys");
    for (int i = 0; i < 60; ++i) {
      FixedBytes<32> seed;
      rng.FillBytes(seed.data(), 32);
      keys.push_back(Ed25519KeyFromSeed(seed));
    }
    params = ProtocolParams::Paper();
    params.tau_step = 40;    // Threshold 27.4.
    params.tau_final = 100;  // Threshold 74.

    ctx.round = 5;
    DeterministicRng srng(1234, "cert-seed");
    srng.FillBytes(ctx.seed.data(), ctx.seed.size());
    ctx.prev_hash[0] = 0x77;
    ctx.total_weight = 60 * 1000;
    ctx.weight_of = [](const PublicKey&) { return 1000u; };

    value[0] = 0x42;
  }

  // Builds a valid certificate for `step` by collecting genuinely selected
  // committee members until the threshold is passed.
  Certificate BuildValid(uint32_t step, double tau, double threshold) {
    Certificate cert;
    cert.round = ctx.round;
    cert.step = step;
    cert.block_hash = value;
    double total = 0;
    for (const auto& key : keys) {
      SortitionResult sort = RunSortition(kVrf, key, ctx.seed, tau, Role::kCommittee, ctx.round,
                                          step, 1000, ctx.total_weight);
      if (sort.votes == 0) {
        continue;
      }
      cert.votes.push_back(MakeVote(key, ctx.round, step, sort.hash, sort.proof, ctx.prev_hash,
                                    value, kSigner));
      total += static_cast<double>(sort.votes);
      if (total > threshold) {
        break;
      }
    }
    return cert;
  }

  std::vector<Ed25519KeyPair> keys;
  ProtocolParams params;
  RoundContext ctx;
  Hash256 value;
};

TEST(CertificateTest, ValidCertificatePasses) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  EXPECT_TRUE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, ValidFinalCertificatePasses) {
  CertFixture f;
  Certificate cert = f.BuildValid(kStepFinal, f.params.tau_final, f.params.FinalThreshold());
  EXPECT_TRUE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsWrongRound) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  RoundContext other = f.ctx;
  other.round = 6;
  EXPECT_FALSE(ValidateCertificate(cert, other, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsWrongPrevHash) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  RoundContext other = f.ctx;
  other.prev_hash[0] ^= 1;
  EXPECT_FALSE(ValidateCertificate(cert, other, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsForgedSignature) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  cert.votes.back().signature[0] ^= 1;
  EXPECT_FALSE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsNonCommitteeVoter) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  // Re-sign a vote with credentials from a different step (valid VRF, wrong
  // context): sortition verification must fail.
  const auto& key = f.keys[0];
  SortitionResult wrong_step = RunSortition(kVrf, key, f.ctx.seed, f.params.tau_step,
                                            Role::kCommittee, f.ctx.round, 4, 1000,
                                            f.ctx.total_weight);
  cert.votes.back() = MakeVote(key, f.ctx.round, 3, wrong_step.hash, wrong_step.proof,
                               f.ctx.prev_hash, f.value, kSigner);
  EXPECT_FALSE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsDuplicateVoters) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  cert.votes.push_back(cert.votes.front());
  EXPECT_FALSE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsMixedValues) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  cert.votes.back().value[0] ^= 1;  // Also breaks the signature, but the value
                                    // check fires first either way.
  EXPECT_FALSE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsBelowThreshold) {
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  // Keep only the first vote: far below the threshold.
  cert.votes.resize(1);
  EXPECT_FALSE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, RejectsFinalCertWithStepCommittee) {
  // Votes selected for an ordinary step cannot certify the final step: the
  // final step's sortition uses tau_final, so the proofs don't verify there.
  CertFixture f;
  Certificate cert = f.BuildValid(3, f.params.tau_step, f.params.StepThreshold());
  cert.step = kStepFinal;
  for (auto& v : cert.votes) {
    v.step = kStepFinal;  // Breaks signatures too; both checks protect.
  }
  EXPECT_FALSE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

TEST(CertificateTest, WeightsOfHeavyUsersCountMultiply) {
  // A certificate can be carried by few heavy voters: give one key most of
  // the stake so it gets many sub-votes.
  CertFixture f;
  f.ctx.weight_of = [&f](const PublicKey& pk) {
    return pk == f.keys[0].public_key ? 50000u : 100u;
  };
  f.ctx.total_weight = 50000 + 59 * 100;
  Certificate cert;
  cert.round = f.ctx.round;
  cert.step = 3;
  cert.block_hash = f.value;
  SortitionResult sort = RunSortition(kVrf, f.keys[0], f.ctx.seed, f.params.tau_step,
                                      Role::kCommittee, f.ctx.round, 3, 50000,
                                      f.ctx.total_weight);
  ASSERT_GT(sort.votes, static_cast<uint64_t>(f.params.StepThreshold()));
  cert.votes.push_back(MakeVote(f.keys[0], f.ctx.round, 3, sort.hash, sort.proof, f.ctx.prev_hash,
                                f.value, kSigner));
  EXPECT_TRUE(ValidateCertificate(cert, f.ctx, f.params, kVrf, kSigner));
}

}  // namespace
}  // namespace algorand
