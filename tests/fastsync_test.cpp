// Checkpoint restart and certificate-chain fast-sync tests (DESIGN.md §13).
// The pins here are the PR's acceptance bar: a cold restart from a checkpoint
// and a fast-sync join must land on bit-identical state — same tip hash, same
// final frontier, same layout-independent StateFingerprint — as the full
// WAL-replay / full block-catch-up paths, and a corrupted checkpoint must
// fall back to replay with that same identical state, never load silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/sim_harness.h"

namespace algorand {
namespace {

namespace fs = std::filesystem;

std::string FreshDataDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "algorand_fastsync_" + name;
  fs::remove_all(dir);
  return dir;
}

HarnessConfig FastSyncConfig(uint64_t seed, const std::string& dir) {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.checkpoint_interval = 4;
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.use_sim_crypto = true;  // Link verification is backend-agnostic.
  cfg.data_dir = dir;
  cfg.store_fsync = FsyncPolicy::kOff;
  cfg.store_background_writer = false;  // Deterministic I/O interleaving.
  return cfg;
}

// Requires node `i`'s ledger state to be bit-identical to node `ref`'s over
// every common round: block hashes, consensus kinds above the compacted
// base, and the account-state fingerprint at the compaction base itself —
// node `ref` recomputes it by replaying from genesis, node `i` serves it
// from the installed checkpoint, so equality pins the whole prefix.
void ExpectStateMatches(SimHarness& h, size_t i, size_t ref) {
  const Ledger& a = h.node(i).ledger();
  const Ledger& b = h.node(ref).ledger();
  uint64_t common = std::min<uint64_t>(a.chain_length(), b.chain_length());
  ASSERT_GT(common, a.base_round());
  for (uint64_t r = std::max<uint64_t>(a.base_round(), b.base_round()); r < common; ++r) {
    ASSERT_EQ(a.BlockAtRound(r).Hash(), b.BlockAtRound(r).Hash()) << "round " << r;
  }
  uint64_t pin = std::max<uint64_t>(a.base_round(), b.base_round());
  EXPECT_EQ(a.AccountsAtRound(pin).StateFingerprint(),
            b.AccountsAtRound(pin).StateFingerprint());
  auto fa = a.HighestFinalRound();
  auto fb = b.HighestFinalRound();
  ASSERT_TRUE(fa.has_value());
  ASSERT_TRUE(fb.has_value());
  uint64_t ff = std::min<uint64_t>(*fa, *fb);
  EXPECT_EQ(a.BlockAtRound(ff).Hash(), b.BlockAtRound(ff).Hash());
}

TEST(FastSyncTest, ColdRestartFromCheckpointMatchesFullReplay) {
  std::string dir = FreshDataDir("cold_restart");
  SimHarness h(FastSyncConfig(11, dir));
  h.Start();
  ASSERT_TRUE(h.RunRounds(10, Hours(2)));

  h.KillNode(5);
  h.RestartNode(5, /*from_snapshot=*/true);
  // The restart restored from the checkpoint ladder, not by replaying the
  // whole WAL: the ledger runs in compacted-prefix mode.
  uint64_t base = h.node(5).ledger().base_round();
  EXPECT_GT(base, 0u);
  EXPECT_EQ(base % 4, 0u);  // Checkpoints land on interval boundaries.
  ExpectStateMatches(h, 5, 1);

  // And the restarted node keeps up with the network afterwards.
  ASSERT_TRUE(h.RunRounds(16, Hours(2)));
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  EXPECT_FALSE(h.node(5).hung());
  ExpectStateMatches(h, 5, 1);
}

TEST(FastSyncTest, FreshNodeFastSyncJoinMatchesFullCatchupState) {
  std::string dir = FreshDataDir("fresh_join");
  HarnessConfig cfg = FastSyncConfig(12, dir);
  cfg.params.fastsync_enabled = true;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(8, Hours(2)));

  h.KillNode(5);
  ASSERT_TRUE(h.RunRounds(20, Hours(2)));  // Build a gap worth fast-syncing.
  h.RestartNode(5, /*from_snapshot=*/false);  // Disk wiped: genesis-fresh join.
  ASSERT_TRUE(h.RunRounds(28, Hours(2)));

  // The rejoin went through certificate-chain fast-sync, not block replay.
  EXPECT_GE(h.node(5).fastsyncs_completed(), 1u);
  uint64_t base = h.node(5).ledger().base_round();
  EXPECT_GT(base, 0u);
  auto m = h.AggregateMetrics();
  EXPECT_GE(m.counters["catchup.fastsync_sessions"], 1u);
  EXPECT_GE(m.counters["catchup.fastsync_completed"], 1u);
  EXPECT_EQ(m.counters["catchup.fastsync_failed"], 0u);
  // Every pre-checkpoint round was covered by a verified certificate link.
  EXPECT_GE(m.counters["catchup.fastsync_links_verified"], base);
  EXPECT_GE(m.counters["catchup.fastsync_served"], 1u);

  // State equivalence vs a node that held the chain the whole time.
  ExpectStateMatches(h, 5, 1);
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
  EXPECT_FALSE(h.node(5).hung());

  // The installed checkpoint was adopted into the local store, so the next
  // restart of this node can start from it.
  ASSERT_NE(h.node_store(5), nullptr);
  EXPECT_FALSE(h.node_store(5)->checkpoints().empty());
  h.KillNode(5);
  h.RestartNode(5, /*from_snapshot=*/true);
  EXPECT_GE(h.node(5).ledger().base_round(), base);
  ExpectStateMatches(h, 5, 1);
}

// Representative node-level corruption cases (the exhaustive every-offset
// fuzz runs at the store layer in checkpoint_test.cpp, where reopen is
// cheap): each mutation of the checkpoint files must push the restart down
// to full WAL replay with state identical to an always-live node.
TEST(FastSyncTest, CorruptCheckpointFallsBackToWalReplayWithIdenticalState) {
  std::string dir = FreshDataDir("corrupt");
  SimHarness h(FastSyncConfig(13, dir));
  h.Start();
  ASSERT_TRUE(h.RunRounds(10, Hours(2)));

  // Control: with pristine files the restart uses the checkpoint.
  h.KillNode(5);
  h.RestartNode(5, /*from_snapshot=*/true);
  ASSERT_GT(h.node(5).ledger().base_round(), 0u);
  ASSERT_TRUE(h.RunRounds(14, Hours(2)));

  auto corrupt_all = [&](int mode) {
    size_t mutated = 0;
    for (const auto& entry : fs::directory_iterator(dir + "/node-5")) {
      if (entry.path().extension() != ".ckpt") {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      in.close();
      ASSERT_GT(bytes.size(), 48u);
      switch (mode) {
        case 0:  // Torn write: file truncated mid-payload.
          bytes.resize(bytes.size() / 2);
          break;
        case 1:  // Bit flip in the header (length/CRC region).
          bytes[16] = static_cast<char>(bytes[16] ^ 0x01);
          break;
        case 2:  // Bit flip deep in the serialized account table.
          bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x80);
          break;
      }
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      ++mutated;
    }
    ASSERT_GT(mutated, 0u) << "no checkpoint files to corrupt";
  };

  for (int mode = 0; mode < 3; ++mode) {
    SCOPED_TRACE("corruption mode " + std::to_string(mode));
    h.KillNode(5);
    corrupt_all(mode);
    h.RestartNode(5, /*from_snapshot=*/true);
    // Fallback: no usable checkpoint, so the ledger was rebuilt by full WAL
    // replay from genesis — and lands on the same state as the live nodes.
    EXPECT_EQ(h.node(5).ledger().base_round(), 0u);
    ExpectStateMatches(h, 5, 1);
    // Let the network advance (and write fresh checkpoints) between modes.
    ASSERT_TRUE(h.RunRounds(h.node(1).ledger().chain_length() + 3, Hours(2)));
  }
  auto m = h.node_metrics(5).Snapshot();
  EXPECT_GE(m.counters["store.checkpoint_load_failures"], 3u);
  auto safety = h.CheckSafety();
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_TRUE(h.ChainsConsistent());
}

}  // namespace
}  // namespace algorand
