// Tests for the schedule-exploring model checker (src/check): choice-trace
// round-trips, the per-kind depth bound, DFS successor enumeration,
// determinized bit-for-bit replay, counterexample artifacts, the seeded
// safety bug (found, minimized, replayed to the same violation), and the
// attack satellites — the grinding proposer's bounded advantage and the
// tentative->final upgrade across a partition heal.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "src/check/model_checker.h"
#include "src/check/scenarios.h"
#include "src/check/strategy.h"
#include "src/core/adversary_nodes.h"
#include "src/core/sim_harness.h"
#include "src/netsim/adversary.h"
#include "src/obs/safety_auditor.h"

namespace algorand {
namespace {

// --- ChoiceTrace -----------------------------------------------------------

TEST(ChoiceTraceTest, SerializeParseRoundTrip) {
  ChoiceTrace trace;
  trace.choices = {Choice{ChoiceKind::kDelivery, 1, 3}, Choice{ChoiceKind::kAdversary, 0, 2},
                   Choice{ChoiceKind::kCrash, 2, 5}, Choice{ChoiceKind::kDelivery, 0, 2}};
  const std::string text = trace.Serialize();
  EXPECT_EQ(text, "d1/3 a0/2 c2/5 d0/2");
  auto parsed = ChoiceTrace::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, trace);

  auto empty = ChoiceTrace::Parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->choices.empty());
}

TEST(ChoiceTraceTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ChoiceTrace::Parse("x1/3").has_value());  // Unknown kind.
  EXPECT_FALSE(ChoiceTrace::Parse("d3/3").has_value());  // chosen >= options.
  EXPECT_FALSE(ChoiceTrace::Parse("d0/1").has_value());  // Not a choice point.
  EXPECT_FALSE(ChoiceTrace::Parse("d1").has_value());    // Missing options.
}

// --- Strategy depth bound --------------------------------------------------

class AlwaysOneStrategy : public Strategy {
 public:
  using Strategy::Strategy;

 protected:
  uint32_t Pick(ChoiceKind, uint32_t) override { return 1; }
};

TEST(StrategyTest, DepthBoundIsPerKind) {
  AlwaysOneStrategy s(2);
  EXPECT_EQ(s.Choose(ChoiceKind::kDelivery, 3), 1u);
  EXPECT_EQ(s.Choose(ChoiceKind::kDelivery, 3), 1u);
  // Delivery depth exhausted: defaults, unrecorded.
  EXPECT_EQ(s.Choose(ChoiceKind::kDelivery, 3), 0u);
  // Adversary choices have their own budget and still record.
  EXPECT_EQ(s.Choose(ChoiceKind::kAdversary, 3), 1u);
  EXPECT_EQ(s.trace().choices.size(), 3u);
  EXPECT_EQ(s.trace().choices[2].kind, ChoiceKind::kAdversary);
}

TEST(StrategyTest, SingleOptionIsNotAChoicePoint) {
  AlwaysOneStrategy s(8);
  EXPECT_EQ(s.Choose(ChoiceKind::kDelivery, 1), 0u);
  EXPECT_TRUE(s.trace().choices.empty());
}

// --- DFS successor ---------------------------------------------------------

ChoiceTrace Trace(std::vector<Choice> choices) {
  ChoiceTrace t;
  t.choices = std::move(choices);
  return t;
}

TEST(NextDfsPrefixTest, IncrementsDeepestUntriedChoice) {
  auto next = NextDfsPrefix(
      Trace({Choice{ChoiceKind::kDelivery, 0, 2}, Choice{ChoiceKind::kDelivery, 0, 3}}));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->Serialize(), "d0/2 d1/3");

  // Deepest choice exhausted: pop it, increment the one above.
  next = NextDfsPrefix(
      Trace({Choice{ChoiceKind::kDelivery, 0, 2}, Choice{ChoiceKind::kDelivery, 2, 3}}));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->Serialize(), "d1/2");

  // Everything exhausted: the tree is done.
  next = NextDfsPrefix(
      Trace({Choice{ChoiceKind::kDelivery, 1, 2}, Choice{ChoiceKind::kDelivery, 2, 3}}));
  EXPECT_FALSE(next.has_value());

  // The empty trace (a run that hit no choice points) is also exhaustion.
  EXPECT_FALSE(NextDfsPrefix(Trace({})).has_value());
}

// --- ModelChecker: determinism and replay ----------------------------------

CheckConfig TinyConfig() {
  CheckConfig cfg;
  cfg.n_nodes = 4;
  cfg.rounds = 1;
  cfg.harness_seed = 7;
  cfg.max_choice_points = 6;
  return cfg;
}

TEST(ModelCheckerTest, DefaultScheduleIsDeterministicAndSafe) {
  ModelChecker checker(TinyConfig());
  ScheduleOutcome a = checker.RunOne(ChoiceTrace{});
  ScheduleOutcome b = checker.RunOne(ChoiceTrace{});
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(a.safety_ok) << a.Fingerprint();
  EXPECT_FALSE(a.diverged);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(ModelCheckerTest, RecordedTraceReplaysBitForBit) {
  CheckConfig cfg = TinyConfig();
  cfg.adversary_max_decisions = 3;
  ModelChecker checker(cfg);
  RandomStrategy strategy(99, cfg.max_choice_points);
  ScheduleOutcome live = checker.RunWithStrategy(&strategy);
  ASSERT_FALSE(live.trace.choices.empty());

  ScheduleOutcome replay = checker.RunOne(live.trace);
  EXPECT_FALSE(replay.diverged);
  EXPECT_EQ(replay.Fingerprint(), live.Fingerprint());
  EXPECT_EQ(replay.trace, live.trace);
}

TEST(ModelCheckerTest, ExhaustiveDfsVisitsDistinctSchedules) {
  CheckConfig cfg = TinyConfig();
  cfg.max_candidates = 2;
  cfg.max_choice_points = 4;
  ModelChecker checker(cfg);

  // Walk the DFS by hand and require every visited schedule to be distinct.
  std::set<std::string> seen;
  ChoiceTrace prefix;
  for (int i = 0; i < 30; ++i) {
    ScheduleOutcome out = checker.RunOne(prefix);
    EXPECT_TRUE(seen.insert(out.trace.Serialize()).second)
        << "duplicate schedule: " << out.trace.Serialize();
    auto next = NextDfsPrefix(out.trace);
    if (!next.has_value()) {
      break;
    }
    prefix = *next;
  }
  EXPECT_GE(seen.size(), 10u);

  // The library loop agrees with the manual walk.
  ModelChecker::ExploreResult res = checker.RunExhaustive(seen.size());
  EXPECT_EQ(res.schedules, seen.size());
  EXPECT_EQ(res.violations, 0u);
}

TEST(ModelCheckerTest, CleanProtocolSurvivesAdversarialSchedules) {
  CheckConfig cfg = TinyConfig();
  cfg.rounds = 2;
  cfg.adversary_max_decisions = 6;
  cfg.max_choice_points = 12;
  ModelChecker checker(cfg);
  ModelChecker::ExploreResult res = checker.RunRandom(15, 3);
  EXPECT_EQ(res.schedules, 15u);
  EXPECT_EQ(res.violations, 0u)
      << (res.first_violation ? res.first_violation->Fingerprint() : std::string());
}

TEST(ModelCheckerTest, CrashInjectionSchedulesStaySafe) {
  CheckConfig cfg = TinyConfig();
  cfg.rounds = 2;
  cfg.max_crash_events = 2;
  ModelChecker checker(cfg);
  ModelChecker::ExploreResult res = checker.RunRandom(8, 5);
  EXPECT_EQ(res.schedules, 8u);
  EXPECT_EQ(res.violations, 0u);
}

// --- The seeded safety bug -------------------------------------------------

CheckConfig SeededBugConfig() {
  CheckConfig cfg;
  cfg.n_nodes = 4;
  cfg.rounds = 2;
  cfg.harness_seed = 7;
  cfg.max_choice_points = 12;
  cfg.adversary_max_decisions = 6;
  cfg.seeded_bug = true;
  return cfg;
}

TEST(SeededBugTest, DefaultScheduleIsClean) {
  // ForcedFinalNode is harmless when the final step genuinely succeeds: on
  // the unperturbed schedule every round earns its FINAL honestly.
  ModelChecker checker(SeededBugConfig());
  ScheduleOutcome out = checker.RunOne(ChoiceTrace{});
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.safety_ok) << out.Fingerprint();
}

TEST(SeededBugTest, FoundMinimizedAndReplayedToSameViolation) {
  ModelChecker checker(SeededBugConfig());
  ModelChecker::ExploreResult res = checker.RunRandom(12, 1);
  ASSERT_GT(res.violations, 0u) << "randomized exploration missed the seeded bug";
  ASSERT_TRUE(res.first_violation.has_value());
  const ScheduleOutcome& violation = *res.first_violation;

  bool names_missing_quorum = false;
  for (const std::string& v : violation.violations) {
    names_missing_quorum |= v.find("FINAL consensus without a final-step quorum") !=
                            std::string::npos;
  }
  EXPECT_TRUE(names_missing_quorum) << violation.Fingerprint();

  // Minimization keeps the violation and never grows the trace.
  ChoiceTrace minimized = checker.Minimize(violation.trace);
  EXPECT_LE(minimized.choices.size(), violation.trace.choices.size());
  ScheduleOutcome replay = checker.RunOne(minimized);
  EXPECT_FALSE(replay.safety_ok);
  EXPECT_FALSE(replay.diverged);

  // Replaying the minimized schedule is bit-for-bit reproducible.
  EXPECT_EQ(checker.RunOne(minimized).Fingerprint(), replay.Fingerprint());
}

TEST(SeededBugTest, CounterexampleArtifactRoundTrips) {
  ModelChecker checker(SeededBugConfig());
  ModelChecker::ExploreResult res = checker.RunRandom(12, 1);
  ASSERT_TRUE(res.first_violation.has_value());

  const std::string path = ::testing::TempDir() + "check_test_counterexample.txt";
  ASSERT_TRUE(ModelChecker::WriteCounterexample(path, checker.config(), *res.first_violation));
  auto ce = ModelChecker::ReadCounterexample(path);
  ASSERT_TRUE(ce.has_value());
  EXPECT_EQ(ce->trace, res.first_violation->trace);
  EXPECT_EQ(ce->config.n_nodes, checker.config().n_nodes);
  EXPECT_EQ(ce->config.harness_seed, checker.config().harness_seed);
  EXPECT_EQ(ce->config.adversary_max_decisions, checker.config().adversary_max_decisions);
  EXPECT_TRUE(ce->config.seeded_bug);

  // A fresh checker built from the artifact alone reproduces the recorded run.
  ModelChecker replayer(ce->config);
  ScheduleOutcome replay = replayer.RunOne(ce->trace);
  EXPECT_FALSE(replay.diverged);
  EXPECT_EQ(replay.Fingerprint(), ce->fingerprint);
  EXPECT_FALSE(replay.safety_ok);
}

// --- Satellite: the grinding proposer's advantage is bounded ---------------

TEST(GrindingProposerTest, SeedRefreshBoundsGrinderAdvantage) {
  // A §5.2 adversary grinding block payloads for a favorable next-round seed:
  // because next_seed = VRF(seed_r || r+1) ignores the payload, every ground
  // round reaches exactly ONE next-seed no matter how many candidates it
  // tries — its only lever is the 1-bit propose/withhold choice.
  HarnessConfig cfg;
  cfg.n_nodes = 10;
  cfg.rng_seed = 21;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.max_steps = 9;
  cfg.params.recovery_interval = Minutes(10);
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.use_sim_crypto = true;
  cfg.sim_workers = 0;
  cfg.verify_workers = 0;
  cfg.grinding_count = 1;
  cfg.grind_candidates = 8;
  cfg.grind_withhold = true;
  SimHarness h(cfg);
  h.Start();
  ASSERT_TRUE(h.RunRounds(5, Hours(4)));

  const auto& grinder = dynamic_cast<const GrindingProposerNode&>(h.node(0));
  const GrindingProposerNode::GrindStats& stats = grinder.grind_stats();
  ASSERT_GE(stats.rounds_selected, 1u) << "seed 21 must select the grinder at least once";
  EXPECT_EQ(stats.candidates_tried, stats.rounds_selected * 8);
  EXPECT_EQ(stats.distinct_next_seeds, stats.rounds_selected);
  EXPECT_TRUE(h.CheckSafety().ok);
  EXPECT_TRUE(h.ChainsConsistent());
}

// --- Satellite: tentative -> final upgrade across a partition heal ---------

TEST(PartitionHealTest, TentativeRoundsUpgradeToFinalAcrossHeal) {
  // A 20% minority is cut off mid-protocol for 9 minutes while the majority
  // keeps committing. After the heal the minority must catch up and hold the
  // partition-era rounds as FINAL (not stuck tentative), with the auditor
  // silent across split, catch-up, and upgrade.
  HarnessConfig cfg;
  cfg.n_nodes = 10;
  cfg.rng_seed = 5;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.max_steps = 9;
  cfg.params.recovery_interval = Minutes(10);
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.use_sim_crypto = true;
  cfg.sim_workers = 0;
  cfg.verify_workers = 0;
  SimHarness h(cfg);

  SafetyAuditorConfig acfg;
  acfg.step_threshold = cfg.params.StepThreshold();
  acfg.final_threshold = cfg.params.FinalThreshold();
  SafetyAuditor auditor(acfg);
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });

  h.Start();
  ASSERT_TRUE(h.RunRounds(1, Hours(1)));

  const std::set<NodeId> minority = {0, 1};
  const SimTime split_at = h.sim().now();
  const SimTime heal_at = split_at + Minutes(9);
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(minority, split_at, heal_at));
  h.sim().RunUntil(heal_at);

  const uint64_t minority_tip_at_heal = h.node(0).ledger().chain_length();
  const uint64_t majority_tip_at_heal = h.node(9).ledger().chain_length();
  ASSERT_GT(majority_tip_at_heal, minority_tip_at_heal)
      << "the 80% side should keep committing through the split";

  h.sim().RunUntil(heal_at + Minutes(25));

  EXPECT_GE(h.node(0).ledger().chain_length(), majority_tip_at_heal)
      << "the minority must catch up past the majority's split-time tip";
  for (uint64_t r = minority_tip_at_heal; r < majority_tip_at_heal; ++r) {
    EXPECT_EQ(h.node(0).ledger().ConsensusAtRound(r), ConsensusKind::kFinal)
        << "partition-era round " << r << " stuck tentative on the rejoined minority";
  }
  EXPECT_TRUE(h.ChainsConsistent());
  EXPECT_TRUE(h.CheckSafety().ok);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

// --- Scenario library smoke ------------------------------------------------

TEST(ScenarioTest, LibraryListsScenariosAndRejectsUnknownNames) {
  // (Running each scenario end-to-end is the CI model-check-smoke job's and
  // check_cli's business — here we only check the registry surface.)
  auto infos = ListScenarios();
  ASSERT_EQ(infos.size(), 3u);
  for (const ScenarioInfo& info : infos) {
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.description, nullptr);
  }
  EXPECT_FALSE(RunScenarioByName("no-such-scenario").has_value());
}

TEST(ScenarioTest, SeedGrindScenarioPasses) {
  auto result = RunScenarioByName("seed-grind");
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->pass) << result->detail;
}

}  // namespace
}  // namespace algorand
