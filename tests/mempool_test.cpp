// Mempool edge cases: nonce gaps held then filled, fee-priority eviction at
// capacity, duplicate-id rejection across relay copies, replacement by fee,
// and apply-time invalidation after a competing block commits.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ledger/ledger.h"
#include "src/ledger/mempool.h"

namespace algorand {
namespace {

const Ed25519Signer kSigner;

struct Fixture {
  Fixture() : bundle(MakeTestGenesis(8, 1000, 7)), ledger(bundle.config) {}
  GenesisBundle bundle;
  Ledger ledger;

  const Ed25519KeyPair& key(size_t i) const { return bundle.keys[i]; }
  PublicKey pk(size_t i) const { return bundle.keys[i].public_key; }

  Transaction Pay(size_t from, size_t to, uint64_t amount, uint64_t nonce, uint64_t fee = 0) {
    return MakeTransaction(key(from), pk(to), amount, nonce, kSigner, fee);
  }

  uint64_t NextNonce(size_t i) const { return ledger.accounts().NextNonceOf(pk(i)); }
};

TEST(MempoolTest, NonceGapHeldThenFilled) {
  Fixture f;
  Mempool pool;
  Transaction t0 = f.Pay(0, 1, 10, 0);
  Transaction t2 = f.Pay(0, 1, 10, 2);
  EXPECT_EQ(pool.Add(t0, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(t2, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.size(), 2u);

  // Only the contiguous prefix from the ledger nonce is proposable: nonce 2
  // waits for nonce 1.
  std::vector<Transaction> block = pool.BuildBlock(f.ledger.accounts(), 1 << 20);
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0].Id(), t0.Id());

  // Filling the gap releases the whole run, in nonce order.
  Transaction t1 = f.Pay(0, 1, 10, 1);
  EXPECT_EQ(pool.Add(t1, f.NextNonce(0)), Mempool::AddResult::kAdded);
  block = pool.BuildBlock(f.ledger.accounts(), 1 << 20);
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block[0].nonce, 0u);
  EXPECT_EQ(block[1].nonce, 1u);
  EXPECT_EQ(block[2].nonce, 2u);
}

TEST(MempoolTest, FeePriorityEvictionAtCapacity) {
  Fixture f;
  MempoolConfig cfg;
  cfg.capacity = 4;
  Mempool pool(cfg);
  // Four senders, fees 1..4. The fee-1 transaction is the eviction victim.
  std::vector<Transaction> resident;
  for (size_t s = 0; s < 4; ++s) {
    resident.push_back(f.Pay(s, 5, 10, 0, /*fee=*/s + 1));
    EXPECT_EQ(pool.Add(resident.back(), f.NextNonce(s)), Mempool::AddResult::kAdded);
  }
  EXPECT_EQ(pool.size(), 4u);

  // Pricing below every resident transaction: rejected, pool unchanged.
  Transaction cheap = f.Pay(4, 5, 10, 0, /*fee=*/1);
  EXPECT_EQ(pool.Add(cheap, f.NextNonce(4)), Mempool::AddResult::kUnderpriced);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_FALSE(pool.Contains(cheap.Id()));

  // A higher-fee arrival displaces the lowest-fee resident.
  Transaction rich = f.Pay(4, 5, 10, 0, /*fee=*/9);
  EXPECT_EQ(pool.Add(rich, f.NextNonce(4)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_TRUE(pool.Contains(rich.Id()));
  EXPECT_FALSE(pool.Contains(resident[0].Id()));  // fee 1: evicted.
  EXPECT_TRUE(pool.Contains(resident[1].Id()));

  // An arrival pricing at (not above) the current floor is also rejected:
  // eviction requires a strictly higher fee, so fee ties never churn.
  Transaction tie = f.Pay(5, 6, 10, 0, /*fee=*/2);
  EXPECT_EQ(pool.Add(tie, f.NextNonce(5)), Mempool::AddResult::kUnderpriced);
}

TEST(MempoolTest, EvictionTakesQueueTailSoNoGapOpens) {
  Fixture f;
  MempoolConfig cfg;
  cfg.capacity = 4;
  Mempool pool(cfg);
  // Sender 0 holds the two lowest-fee transactions, nonces 0 and 1.
  Transaction head = f.Pay(0, 4, 10, 0, /*fee=*/1);
  Transaction tail = f.Pay(0, 4, 10, 1, /*fee=*/1);
  EXPECT_EQ(pool.Add(head, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(tail, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(f.Pay(1, 4, 10, 0, /*fee=*/5), f.NextNonce(1)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(f.Pay(2, 4, 10, 0, /*fee=*/5), f.NextNonce(2)), Mempool::AddResult::kAdded);

  // The displacement victim must be sender 0's *tail* (nonce 1), never the
  // head — evicting nonce 0 while keeping nonce 1 would strand a gap the
  // proposer can never cross.
  EXPECT_EQ(pool.Add(f.Pay(3, 4, 10, 0, /*fee=*/9), f.NextNonce(3)), Mempool::AddResult::kAdded);
  EXPECT_TRUE(pool.Contains(head.Id()));
  EXPECT_FALSE(pool.Contains(tail.Id()));
  std::vector<Transaction> block = pool.BuildBlock(f.ledger.accounts(), 1 << 20);
  ASSERT_EQ(block.size(), 4u);  // Every resident transaction is proposable.
}

TEST(MempoolTest, DuplicateIdAcrossRelayCopies) {
  Fixture f;
  Mempool pool;
  Transaction tx = f.Pay(0, 1, 10, 0, /*fee=*/3);
  EXPECT_EQ(pool.Add(tx, f.NextNonce(0)), Mempool::AddResult::kAdded);
  // Gossip delivers the same payload along several paths; every relay copy
  // after the first is dropped.
  EXPECT_EQ(pool.Add(tx, f.NextNonce(0)), Mempool::AddResult::kDuplicate);
  EXPECT_EQ(pool.Add(tx, f.NextNonce(0)), Mempool::AddResult::kDuplicate);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(MempoolTest, SameSlotReplacedOnlyByHigherFee) {
  Fixture f;
  Mempool pool;
  Transaction low = f.Pay(0, 1, 10, 0, /*fee=*/2);
  Transaction equal = f.Pay(0, 2, 10, 0, /*fee=*/2);   // Different payload, same slot.
  Transaction higher = f.Pay(0, 3, 10, 0, /*fee=*/5);
  EXPECT_EQ(pool.Add(low, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(equal, f.NextNonce(0)), Mempool::AddResult::kDuplicate);
  EXPECT_EQ(pool.Add(higher, f.NextNonce(0)), Mempool::AddResult::kReplaced);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Contains(higher.Id()));
  EXPECT_FALSE(pool.Contains(low.Id()));
}

TEST(MempoolTest, StaleNonceRejected) {
  Fixture f;
  Mempool pool;
  // Commit a block spending sender 0's nonce 0 so the ledger nonce is 1.
  Block b = Block::MakeEmpty(f.ledger.next_round(), f.ledger.tip_hash(),
                             f.ledger.SeedForRound(f.ledger.next_round() - 1));
  b.is_empty = false;
  b.txns.push_back(f.Pay(0, 1, 10, 0));
  ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));
  Transaction stale = f.Pay(0, 2, 10, 0);
  EXPECT_EQ(pool.Add(stale, f.NextNonce(0)), Mempool::AddResult::kStale);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(MempoolTest, ApplyTimeInvalidationAfterCompetingCommit) {
  Fixture f;
  Mempool pool;
  // The pool holds sender 0's nonces 0 and 1 (payments to node 1)...
  Transaction mine0 = f.Pay(0, 1, 10, 0, /*fee=*/1);
  Transaction mine1 = f.Pay(0, 1, 10, 1, /*fee=*/1);
  EXPECT_EQ(pool.Add(mine0, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(mine1, f.NextNonce(0)), Mempool::AddResult::kAdded);

  // ...but consensus commits a *competing* block where sender 0 spent nonce 0
  // on a different payment. The resident nonce-0 transaction can never apply
  // again; nonce 1 is still valid.
  Transaction competing = f.Pay(0, 2, 50, 0, /*fee=*/2);
  Block b = Block::MakeEmpty(f.ledger.next_round(), f.ledger.tip_hash(),
                             f.ledger.SeedForRound(f.ledger.next_round() - 1));
  b.is_empty = false;
  b.txns.push_back(competing);
  ASSERT_TRUE(f.ledger.Append(b, ConsensusKind::kFinal));

  pool.ObserveCommitted(b.txns, f.ledger.accounts());
  EXPECT_FALSE(pool.Contains(mine0.Id()));
  EXPECT_TRUE(pool.Contains(mine1.Id()));
  std::vector<Transaction> block = pool.BuildBlock(f.ledger.accounts(), 1 << 20);
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0].Id(), mine1.Id());
}

TEST(MempoolTest, BuildBlockOrdersByFeeAndRespectsBudget) {
  Fixture f;
  Mempool pool;
  Transaction cheap = f.Pay(0, 3, 10, 0, /*fee=*/1);
  Transaction mid = f.Pay(1, 3, 10, 0, /*fee=*/5);
  Transaction rich = f.Pay(2, 3, 10, 0, /*fee=*/9);
  EXPECT_EQ(pool.Add(cheap, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(mid, f.NextNonce(1)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(rich, f.NextNonce(2)), Mempool::AddResult::kAdded);

  std::vector<Transaction> block = pool.BuildBlock(f.ledger.accounts(), 1 << 20);
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block[0].Id(), rich.Id());
  EXPECT_EQ(block[1].Id(), mid.Id());
  EXPECT_EQ(block[2].Id(), cheap.Id());

  // A two-transaction byte budget keeps the most valuable payload.
  block = pool.BuildBlock(f.ledger.accounts(), 2 * Transaction::kWireSize);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block[0].Id(), rich.Id());
  EXPECT_EQ(block[1].Id(), mid.Id());
}

TEST(MempoolTest, BuildBlockSkipsSendersThatCannotPay) {
  Fixture f;
  Mempool pool;
  // Sender 0's first transaction drains the balance; the second can never
  // apply on top of it and must not be proposed.
  Transaction drain = f.Pay(0, 1, 1000, 0);
  Transaction broke = f.Pay(0, 1, 500, 1);
  EXPECT_EQ(pool.Add(drain, f.NextNonce(0)), Mempool::AddResult::kAdded);
  EXPECT_EQ(pool.Add(broke, f.NextNonce(0)), Mempool::AddResult::kAdded);
  std::vector<Transaction> block = pool.BuildBlock(f.ledger.accounts(), 1 << 20);
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0].Id(), drain.Id());
}

}  // namespace
}  // namespace algorand
