// Durable block store tests: framing round-trips, segment roll + GC,
// fsync policies, crash semantics, fork-switch truncation across reopen,
// and the torn-tail fuzz — truncate and bit-flip the last segment at every
// byte offset and require recovery to yield exactly the committed prefix.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/store/block_store.h"

namespace algorand {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "algorand_store_" + name;
  fs::remove_all(dir);
  return dir;
}

// Deterministic pseudo-random bytes (xorshift), so ReadRound results can be
// compared against regenerated originals.
std::vector<uint8_t> PatternBytes(uint64_t seed, size_t n) {
  std::vector<uint8_t> out(n);
  uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<uint8_t>(x);
  }
  return out;
}

StoredRound MakeRound(uint64_t round, size_t block_bytes = 64) {
  StoredRound r;
  r.round = round;
  r.kind = round % 3 == 0 ? 0 : 1;  // Mix final and tentative.
  std::vector<uint8_t> tip = PatternBytes(round ^ 0xf00d, 32);
  memcpy(r.tip_hash.data(), tip.data(), 32);
  r.block = PatternBytes(round, block_bytes);
  r.cert = PatternBytes(round ^ 0xcafe, 16);
  return r;
}

void ExpectRoundEq(const StoredRound& got, const StoredRound& want) {
  EXPECT_EQ(got.round, want.round);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.tip_hash, want.tip_hash);
  EXPECT_EQ(got.block, want.block);
  EXPECT_EQ(got.cert, want.cert);
}

StoreOptions SyncOptions(const std::string& dir) {
  StoreOptions opts;
  opts.dir = dir;
  opts.background_writer = false;  // Deterministic, single-threaded.
  opts.fsync = FsyncPolicy::kOff;  // Tests exercise framing, not the disk.
  return opts;
}

TEST(BlockStoreTest, FsyncPolicyNamesRoundTrip) {
  for (FsyncPolicy p :
       {FsyncPolicy::kEveryRound, FsyncPolicy::kBatched, FsyncPolicy::kOff}) {
    auto parsed = ParseFsyncPolicy(FsyncPolicyName(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").has_value());
}

TEST(BlockStoreTest, EmptyStoreOpensAndReopens) {
  std::string dir = FreshDir("empty");
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 0u);
  EXPECT_EQ(store->next_round(), 1u);
  EXPECT_FALSE(store->ReadRound(1).has_value());
  store.reset();
  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 0u);
}

TEST(BlockStoreTest, RoundTripAcrossReopen) {
  std::string dir = FreshDir("roundtrip");
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 20; ++r) {
    store->AppendRound(MakeRound(r));
    EXPECT_EQ(store->max_round(), r);
    EXPECT_EQ(store->next_round(), r + 1);
  }
  Hash256 tip = store->tip_hash();
  store.reset();

  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 20u);
  EXPECT_EQ(store->replayed_rounds(), 20u);
  EXPECT_EQ(store->tip_hash(), tip);
  for (uint64_t r = 1; r <= 20; ++r) {
    auto got = store->ReadRound(r);
    ASSERT_TRUE(got.has_value()) << "round " << r;
    ExpectRoundEq(*got, MakeRound(r));
  }
  EXPECT_FALSE(store->ReadRound(21).has_value());
}

TEST(BlockStoreTest, SegmentRollAndTruncateGc) {
  std::string dir = FreshDir("segments");
  StoreOptions opts = SyncOptions(dir);
  opts.segment_bytes = 1024;  // Force frequent rolls.
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 60; ++r) {
    store->AppendRound(MakeRound(r));
  }
  size_t files_before = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    files_before += e.is_regular_file();
  }
  EXPECT_GT(files_before, 5u) << "expected multiple segments";

  // Fork switch far back: most segments hold only dead rounds and must be
  // garbage-collected once the truncate record is durable.
  store->TruncateSuffix(10);
  EXPECT_EQ(store->max_round(), 9u);
  size_t files_after = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    files_after += e.is_regular_file();
  }
  EXPECT_LT(files_after, files_before);
  store.reset();

  store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 9u);
  for (uint64_t r = 1; r <= 9; ++r) {
    auto got = store->ReadRound(r);
    ASSERT_TRUE(got.has_value()) << "round " << r;
    ExpectRoundEq(*got, MakeRound(r));
  }
  EXPECT_FALSE(store->ReadRound(10).has_value());
}

TEST(BlockStoreTest, FinalUpgradeFoldsIntoReadAndSurvivesReopen) {
  std::string dir = FreshDir("upgrade");
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 5; ++r) {
    StoredRound sr = MakeRound(r);
    sr.kind = 1;  // All tentative.
    store->AppendRound(std::move(sr));
  }
  EXPECT_EQ(store->highest_final_round(), 0u);
  std::vector<uint8_t> final_cert = PatternBytes(0xfade, 24);
  store->AppendFinalUpgrade(3, final_cert);
  EXPECT_EQ(store->highest_final_round(), 3u);
  auto got = store->ReadRound(3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->final_cert, final_cert);
  store.reset();

  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->highest_final_round(), 3u);
  got = store->ReadRound(3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->final_cert, final_cert);
  got = store->ReadRound(4);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->final_cert.empty());
}

// The ReplaceSuffix-after-reopen scenario (§8.2): a store reopened from disk
// fork-switches — truncate then an alternate suffix — and a second reopen
// must replay the new chain, skipping the garbage-collected dead history.
TEST(BlockStoreTest, ForkSwitchAfterReopenSurvivesSecondReopen) {
  std::string dir = FreshDir("forkswitch");
  StoreOptions opts = SyncOptions(dir);
  opts.segment_bytes = 1024;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 10; ++r) {
    store->AppendRound(MakeRound(r));
  }
  store.reset();

  // Reopen, then fork-switch: rounds 6..8 are replaced by an alternate
  // history (different blocks, hence different tips).
  store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 10u);
  store->TruncateSuffix(6);
  EXPECT_EQ(store->max_round(), 5u);
  auto alt_round = [](uint64_t r) {
    StoredRound s = MakeRound(r ^ 0x8000);  // Alternate chain contents...
    s.round = r;                            // ...at the same round numbers.
    return s;
  };
  for (uint64_t r = 6; r <= 8; ++r) {
    store->AppendRound(alt_round(r));
  }
  EXPECT_EQ(store->max_round(), 8u);
  Hash256 tip = store->tip_hash();
  store.reset();

  store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 8u);
  EXPECT_EQ(store->tip_hash(), tip);
  for (uint64_t r = 1; r <= 5; ++r) {
    auto got = store->ReadRound(r);
    ASSERT_TRUE(got.has_value()) << "round " << r;
    ExpectRoundEq(*got, MakeRound(r));
  }
  for (uint64_t r = 6; r <= 8; ++r) {
    auto got = store->ReadRound(r);
    ASSERT_TRUE(got.has_value()) << "round " << r;
    ExpectRoundEq(*got, alt_round(r));
  }
  EXPECT_FALSE(store->ReadRound(9).has_value());
}

TEST(BlockStoreTest, FlushThenCrashKeepsEverything) {
  std::string dir = FreshDir("flushcrash");
  StoreOptions opts = SyncOptions(dir);
  opts.background_writer = true;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 7; ++r) {
    store->AppendRound(MakeRound(r));
  }
  store->Flush();
  store->Crash();
  // Inert after Crash: appends no-op instead of touching closed fds.
  store->AppendRound(MakeRound(8));
  store.reset();

  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), 7u);
}

TEST(BlockStoreTest, CrashWithoutFlushKeepsCommittedPrefix) {
  std::string dir = FreshDir("crashprefix");
  StoreOptions opts = SyncOptions(dir);
  opts.background_writer = true;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  ASSERT_NE(store, nullptr) << error;
  for (uint64_t r = 1; r <= 50; ++r) {
    store->AppendRound(MakeRound(r));
  }
  store->Crash();  // Queued-but-unwritten operations die, like SIGKILL.
  store.reset();

  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  uint64_t max = store->max_round();
  EXPECT_LE(max, 50u);
  for (uint64_t r = 1; r <= max; ++r) {
    auto got = store->ReadRound(r);
    ASSERT_TRUE(got.has_value()) << "round " << r;
    ExpectRoundEq(*got, MakeRound(r));
  }
}

TEST(BlockStoreTest, FsyncPoliciesAllRecover) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kEveryRound, FsyncPolicy::kBatched, FsyncPolicy::kOff}) {
    std::string dir = FreshDir(std::string("policy_") + FsyncPolicyName(policy));
    StoreOptions opts = SyncOptions(dir);
    opts.fsync = policy;
    MetricsRegistry metrics;
    std::string error;
    auto store = BlockStore::Open(opts, &error);
    ASSERT_NE(store, nullptr) << error;
    store->AttachMetrics(&metrics);
    for (uint64_t r = 1; r <= 10; ++r) {
      store->AppendRound(MakeRound(r));
    }
    store.reset();
    uint64_t fsyncs = metrics.Snapshot().counters["store.fsyncs"];
    if (policy == FsyncPolicy::kEveryRound) {
      // Payload fsync'd before each commit frame: at least one per round.
      EXPECT_GE(fsyncs, 10u);
    }

    store = BlockStore::Open(opts, &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->max_round(), 10u) << FsyncPolicyName(policy);
  }
}

// --- Torn-tail fuzz -------------------------------------------------------

// Minimal frame scanner mirroring the on-disk format, used to compute the
// exact committed prefix for each truncation point. Any mismatch with the
// store's own recovery is a bug in one of them.
struct CommitStep {
  uint64_t end_offset = 0;  // Offset just past the commit frame.
  uint64_t max_round = 0;   // Highest committed round once it applies.
};

struct SegmentScan {
  uint64_t base_max = 0;  // Highest round committed before this segment.
  std::vector<CommitStep> steps;
  uint64_t size = 0;
};

SegmentScan ScanLastSegment(const std::string& path, uint64_t prior_max) {
  SegmentScan scan;
  scan.base_max = prior_max;
  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> file((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  scan.size = file.size();
  uint64_t off = 8;  // Segment header.
  uint64_t staged_max = prior_max;
  uint64_t cur_max = prior_max;
  while (off + 10 <= file.size()) {
    EXPECT_EQ(file[off], 0xa7u) << "frame magic at " << off;
    uint8_t type = file[off + 1];
    uint32_t len = 0;
    memcpy(&len, file.data() + off + 2, 4);  // Little-endian test host.
    uint64_t end = off + 10 + len;
    EXPECT_LE(end, file.size()) << "frame overruns file";
    if (end > file.size()) {
      break;
    }
    if (type == 1) {  // Round record: payload starts with the round number.
      uint64_t round = 0;
      memcpy(&round, file.data() + off + 10, 8);
      staged_max = round;
    } else if (type == 4) {  // Commit.
      cur_max = staged_max;
      scan.steps.push_back({end, cur_max});
    }
    off = end;
  }
  EXPECT_EQ(off, file.size()) << "pristine segment must end on a frame";
  return scan;
}

// Builds a pristine multi-segment store and returns the path of its last
// segment plus the regenerable round contents.
std::string BuildFuzzStore(const std::string& dir, uint64_t* out_rounds) {
  StoreOptions opts = SyncOptions(dir);
  opts.segment_bytes = 1200;  // Several ops per segment, several segments.
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  EXPECT_NE(store, nullptr) << error;
  const uint64_t kRounds = 30;
  for (uint64_t r = 1; r <= kRounds; ++r) {
    store->AppendRound(MakeRound(r));
  }
  store.reset();
  *out_rounds = kRounds;
  std::string last;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string() > fs::path(last).filename().string()) {
      last = e.path().string();
    }
  }
  EXPECT_FALSE(last.empty());
  return last;
}

void VerifyCommittedPrefix(const std::string& dir, uint64_t expect_max,
                           uint64_t full_rounds) {
  std::string error;
  auto store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), expect_max);
  EXPECT_EQ(store->next_round(), expect_max + 1);
  for (uint64_t r = 1; r <= expect_max; ++r) {
    auto got = store->ReadRound(r);
    ASSERT_TRUE(got.has_value()) << "round " << r;
    ExpectRoundEq(*got, MakeRound(r));
  }
  if (expect_max > 0) {
    EXPECT_EQ(store->tip_hash(), MakeRound(expect_max).tip_hash);
  }
  for (uint64_t r = expect_max + 1; r <= full_rounds; ++r) {
    EXPECT_FALSE(store->ReadRound(r).has_value()) << "round " << r;
  }
  // The repaired log must accept new appends and survive another reopen.
  store->AppendRound(MakeRound(expect_max + 1));
  store.reset();
  store = BlockStore::Open(SyncOptions(dir), &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->max_round(), expect_max + 1);
}

TEST(BlockStoreFuzzTest, TruncateLastSegmentAtEveryByteOffset) {
  std::string pristine = FreshDir("fuzz_trunc_pristine");
  uint64_t rounds = 0;
  std::string last_path = BuildFuzzStore(pristine, &rounds);
  std::string last_name = fs::path(last_path).filename().string();

  // A round record frame begins with its round number; the first one in the
  // last segment tells us what was committed in earlier segments.
  SegmentScan scan = ScanLastSegment(
      last_path, /*prior_max=*/[&] {
        std::ifstream in(last_path, std::ios::binary);
        std::vector<uint8_t> file((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
        uint64_t off = 8;
        while (off + 10 <= file.size()) {
          uint32_t len = 0;
          memcpy(&len, file.data() + off + 2, 4);
          if (file[off + 1] == 1) {
            uint64_t round = 0;
            memcpy(&round, file.data() + off + 10, 8);
            return round - 1;
          }
          off += 10 + len;
        }
        return uint64_t{0};
      }());
  ASSERT_GE(scan.steps.size(), 2u) << "fuzz store too small to be interesting";
  ASSERT_EQ(scan.steps.back().max_round, rounds);

  std::string work = ::testing::TempDir() + "algorand_store_fuzz_trunc_work";
  for (uint64_t cut = 0; cut <= scan.size; ++cut) {
    fs::remove_all(work);
    fs::copy(pristine, work);
    fs::resize_file(work + "/" + last_name, cut);
    uint64_t expect = scan.base_max;
    for (const CommitStep& step : scan.steps) {
      if (step.end_offset <= cut) {
        expect = step.max_round;
      }
    }
    SCOPED_TRACE("cut=" + std::to_string(cut));
    VerifyCommittedPrefix(work, expect, rounds);
    if (::testing::Test::HasFailure()) {
      break;  // One offset's diagnostics is enough; don't spam thousands.
    }
  }
  fs::remove_all(work);
  fs::remove_all(pristine);
}

TEST(BlockStoreFuzzTest, BitFlipLastSegmentAtEveryByteOffset) {
  std::string pristine = FreshDir("fuzz_flip_pristine");
  uint64_t rounds = 0;
  std::string last_path = BuildFuzzStore(pristine, &rounds);
  std::string last_name = fs::path(last_path).filename().string();
  uint64_t size = fs::file_size(last_path);

  std::string work = ::testing::TempDir() + "algorand_store_fuzz_flip_work";
  for (uint64_t pos = 0; pos < size; ++pos) {
    fs::remove_all(work);
    fs::copy(pristine, work);
    {
      std::fstream f(work + "/" + last_name,
                     std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(static_cast<std::streamoff>(pos));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ (1u << (pos % 8)));
      f.seekp(static_cast<std::streamoff>(pos));
      f.write(&byte, 1);
    }
    SCOPED_TRACE("pos=" + std::to_string(pos));
    // A flipped bit may hit dead space never read back, an uncommitted
    // suffix, or a committed frame — recovery must never crash, never serve
    // corrupt data, and always yield some committed prefix of the original.
    std::string error;
    auto store = BlockStore::Open(SyncOptions(work), &error);
    ASSERT_NE(store, nullptr) << error;
    uint64_t max = store->max_round();
    EXPECT_LE(max, rounds);
    for (uint64_t r = 1; r <= max; ++r) {
      auto got = store->ReadRound(r);
      // A flip inside a committed round's payload is caught by the frame CRC
      // at read time; absent reads are acceptable there, corrupt ones never.
      if (got.has_value()) {
        ExpectRoundEq(*got, MakeRound(r));
      }
    }
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
  fs::remove_all(work);
  fs::remove_all(pristine);
}

}  // namespace
}  // namespace algorand
