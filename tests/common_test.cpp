// Unit tests for src/common: byte types, hex, serialization, RNG, stats.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/common/hex.h"
#include "src/common/rng.h"
#include "src/common/serialize.h"
#include "src/common/stats.h"
#include "src/common/time_units.h"

namespace algorand {
namespace {

TEST(FixedBytesTest, DefaultIsZero) {
  Hash256 h;
  EXPECT_TRUE(h.is_zero());
  EXPECT_EQ(h.prefix_u64(), 0u);
}

TEST(FixedBytesTest, OrderingIsLexicographic) {
  Hash256 a, b;
  a[0] = 1;
  b[0] = 2;
  EXPECT_LT(a, b);
  b[0] = 1;
  EXPECT_EQ(a, b);
  a[31] = 5;
  EXPECT_GT(a, b);
}

TEST(FixedBytesTest, HexRoundTrip) {
  Hash256 h;
  for (size_t i = 0; i < h.size(); ++i) {
    h[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  Hash256 back = Hash256::FromHex(h.ToHex());
  EXPECT_EQ(h, back);
}

TEST(FixedBytesTest, FromHexRejectsWrongLength) {
  EXPECT_TRUE(Hash256::FromHex("abcd").is_zero());
  EXPECT_TRUE(Hash256::FromHex("zz").is_zero());
}

TEST(FixedBytesTest, PrefixU64IsBigEndian) {
  Hash256 h;
  h[0] = 0x01;
  h[7] = 0xff;
  EXPECT_EQ(h.prefix_u64(), 0x01000000000000ffULL);
}

TEST(FixedBytesTest, UsableAsUnorderedKey) {
  std::set<Hash256> s;
  Hash256 a;
  a[3] = 9;
  s.insert(a);
  s.insert(Hash256());
  EXPECT_EQ(s.size(), 2u);
}

TEST(HexTest, EncodeKnown) {
  std::vector<uint8_t> v = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(v), "0001abff");
}

TEST(HexTest, DecodeKnown) {
  auto v = HexDecode("0001ABff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<uint8_t>{0x00, 0x01, 0xab, 0xff}));
}

TEST(HexTest, DecodeRejectsOddLength) { EXPECT_FALSE(HexDecode("abc").has_value()); }

TEST(HexTest, DecodeRejectsNonHex) { EXPECT_FALSE(HexDecode("zz").has_value()); }

TEST(HexTest, EmptyRoundTrip) {
  auto v = HexDecode("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
  EXPECT_EQ(HexEncode(*v), "");
}

TEST(SerializeTest, IntegerRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);

  Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, FixedRoundTrip) {
  Hash256 h;
  h[0] = 0x42;
  h[31] = 0x24;
  Writer w;
  w.Fixed(h);
  Reader r(w.buffer());
  EXPECT_EQ(r.Fixed<32>(), h);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, BytesRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  Writer w;
  w.Bytes(payload);
  Reader r(w.buffer());
  EXPECT_EQ(r.Bytes(), payload);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, ReaderDetectsTruncation) {
  Writer w;
  w.U32(7);
  std::vector<uint8_t> buf = w.buffer();
  buf.pop_back();
  Reader r(buf);
  (void)r.U32();
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, ReaderDetectsOversizedBytesLength) {
  Writer w;
  w.U32(1000);  // Claims 1000 bytes follow; none do.
  Reader r(w.buffer());
  (void)r.Bytes();
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, AtEndFailsWithLeftover) {
  Writer w;
  w.U8(1);
  w.U8(2);
  Reader r(w.buffer());
  (void)r.U8();
  EXPECT_FALSE(r.AtEnd());
}

TEST(SerializeTest, FailedReaderReturnsZeroes) {
  Reader r{std::span<const uint8_t>()};
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_TRUE(r.Fixed<32>().is_zero());
  EXPECT_FALSE(r.ok());
}

TEST(RngTest, DeterministicFromSeed) {
  DeterministicRng a(1234);
  DeterministicRng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  DeterministicRng a(1);
  DeterministicRng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, LabelledStreamsDiffer) {
  DeterministicRng a(7, "alpha");
  DeterministicRng b(7, "beta");
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformU64InRange) {
  DeterministicRng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  DeterministicRng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformU64(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusive) {
  DeterministicRng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  DeterministicRng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  DeterministicRng rng(77);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  DeterministicRng rng(78);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  DeterministicRng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, FillBytesDeterministic) {
  DeterministicRng a(11), b(11);
  uint8_t x[33], y[33];
  a.FillBytes(x, sizeof(x));
  b.FillBytes(y, sizeof(y));
  EXPECT_EQ(0, memcmp(x, y, sizeof(x)));
}

TEST(StatsTest, SummaryOfKnownValues) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.p25, 2);
  EXPECT_DOUBLE_EQ(s.p75, 4);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_EQ(s.count, 5u);
}

TEST(StatsTest, SummaryEmpty) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0);
}

TEST(StatsTest, SingleValue) {
  Summary s = Summarize({42});
  EXPECT_DOUBLE_EQ(s.min, 42);
  EXPECT_DOUBLE_EQ(s.max, 42);
  EXPECT_DOUBLE_EQ(s.median, 42);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.25), 2.5);
}

TEST(TimeUnitsTest, Conversions) {
  EXPECT_EQ(Seconds(2), 2 * kSecond);
  EXPECT_EQ(Minutes(1), 60 * kSecond);
  EXPECT_EQ(Millis(1500), kSecond + 500 * kMillisecond);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_EQ(FromSeconds(2.5), Seconds(2) + Millis(500));
}

TEST(BytesTest, AppendBytesAndBytesOfString) {
  std::vector<uint8_t> out = BytesOfString("ab");
  AppendBytes(&out, BytesOfString("cd"));
  EXPECT_EQ(out, (std::vector<uint8_t>{'a', 'b', 'c', 'd'}));
}

}  // namespace
}  // namespace algorand
